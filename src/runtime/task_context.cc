/**
 * @file
 * TaskContext implementation: slipstream reduction semantics.
 */

#include "runtime/task_context.hh"

#include "runtime/parallel_runtime.hh"
#include "sim/trace.hh"

namespace slipsim
{

TaskContext::TaskContext(ParallelRuntime &runtime, Processor &processor,
                         TaskId task_id, int ntasks, StreamKind s,
                         SlipPair *slip_pair)
    : rt(runtime), proc(&processor), fmem(&runtime.fmem()),
      taskId(task_id), nTasks(ntasks), stream(s), pair(slip_pair),
      pdes_(runtime.config().simJobs > 0),
      rng_(runtime.config().seed * 1000003 +
           static_cast<std::uint64_t>(task_id) * 2 +
           (s == StreamKind::AStream ? 1 : 0))
{
}

void
TaskContext::submitEnvelope(Tick at, DeliverFn fn)
{
    MemorySystem &msys = rt.memSys();
    NodeId n = proc->nodeId();
    msys.channel(n).send(proc->eventq().now(), at, MsgKind::SyncOp,
                         std::move(fn));
}

void
TaskContext::readMemBytes(Addr addr, void *out, size_t bytes)
{
    if (!pdes_ || !isAStream()) {
        fmem->readBytes(addr, out, bytes);
        return;
    }
    auto *dst = static_cast<unsigned char *>(out);
    Addr a = addr;
    size_t left = bytes;
    while (left > 0) {
        Addr la = lineAlign(a);
        size_t chunk = la + lineBytes - a;
        if (chunk > left)
            chunk = left;
        if (!proc->l2Cache().transparentShadowRead(a, dst, chunk))
            fmem->readBytes(a, dst, chunk);
        a += chunk;
        dst += chunk;
        left -= chunk;
    }
}

bool
TaskContext::prepLoad(Addr addr, MemReq &req)
{
    if (fastForward)
        return false;
    proc->addBusy(1);

    Addr line = lineAlign(addr);
    if (proc->l1Hit(line))
        return false;

    req.lineAddr = line;
    req.type = ReqType::Read;
    req.node = proc->nodeId();
    req.stream = stream;
    req.inCS = lockDepth > 0;
    req.statsExempt = false;
    req.wantTransparent = false;
    if (isAStream() && pair) {
        int g = pair->aSession - pair->rSession;
        req.gap = static_cast<std::uint8_t>(g < 0 ? 0 : (g > 3 ? 3 : g));
    }
    if (isAStream() && rt.features().transparentLoads && pair) {
        // Transparent when the A-stream has skipped ahead of its
        // R-stream or is inside a (skipped) critical section.
        bool ahead = pair->aSession > pair->rSession;
        req.wantTransparent = ahead || lockDepth > 0;
    }
    return true;
}

bool
TaskContext::prepStore(Addr addr, MemReq &req)
{
    if (fastForward)
        return false;
    proc->addBusy(1);

    Addr line = lineAlign(addr);
    if (isAStream()) {
        // The store executes in the pipeline but is never committed.
        // Same session + outside critical sections: convert to an
        // exclusive prefetch on behalf of the R-stream (Section 3.3).
        if (rt.features().storeConvert && pair &&
            pair->aSession == pair->rSession && lockDepth == 0 &&
            !proc->l2Cache().ownedInL2(line)) {
            MemReq pf;
            pf.lineAddr = line;
            pf.type = ReqType::PrefEx;
            pf.node = proc->nodeId();
            pf.stream = StreamKind::AStream;
            proc->issuePrefetch(pf);
        }
        return false;
    }

    if (proc->storeFast(line, lockDepth > 0))
        return false;

    req.lineAddr = line;
    req.type = ReqType::Excl;
    req.node = proc->nodeId();
    req.stream = stream;
    req.inCS = lockDepth > 0;
    req.statsExempt = false;
    req.wantTransparent = false;
    return true;
}

bool
TaskContext::prepSync(MemReq &req)
{
    proc->addBusy(1);
    if (req.isRead())
        return !proc->l1Hit(req.lineAddr);
    return !proc->storeFast(req.lineAddr, lockDepth > 0);
}

Coro<void>
TaskContext::loadRange(Addr addr, size_t bytes)
{
    Addr end = addr + bytes;
    for (Addr a = lineAlign(addr); a < end; a += lineBytes) {
        co_await ld<std::uint8_t>(a);
        if (!fastForward)
            proc->addBusy(lineBytes / 8 - 1);  // remaining words
    }
}

Coro<void>
TaskContext::storeRange(Addr addr, size_t bytes)
{
    Addr end = addr + bytes;
    for (Addr a = lineAlign(addr); a < end; a += lineBytes) {
        co_await st<std::uint8_t>(a, 0);
        if (!fastForward)
            proc->addBusy(lineBytes / 8 - 1);
    }
}

Coro<void>
TaskContext::ldBuf(Addr addr, void *out, size_t bytes)
{
    Addr end = addr + bytes;
    for (Addr a = lineAlign(addr); a < end; a += lineBytes) {
        co_await ld<std::uint8_t>(a < addr ? addr : a);
        if (!fastForward)
            proc->addBusy(lineBytes / 8 - 1);
    }
    readMemBytes(addr, out, bytes);
}

Coro<void>
TaskContext::stBuf(Addr addr, const void *in, size_t bytes)
{
    const auto *src = static_cast<const unsigned char *>(in);
    Addr end = addr + bytes;
    for (Addr a = lineAlign(addr); a < end; a += lineBytes) {
        Addr pos = a < addr ? addr : a;
        co_await st<std::uint8_t>(pos, src[pos - addr]);
        if (!fastForward)
            proc->addBusy(lineBytes / 8 - 1);
    }
    if (!isAStream())
        fmem->writeBytes(addr, in, bytes);
}

Coro<void>
TaskContext::arBarrierPoint()
{
    // A-stream at a session boundary: consume a token or wait.
    if (fastForward) {
        ++pair->aSession;
        if (pair->aSession >= ffTarget)
            fastForward = false;
        co_return;
    }

    proc->chargeBusy(rt.machine().arSemaphoreTime);
    pair->aAtBarrier = true;
    while (pair->tokens == 0) {
        pair->aTokenWaiter = [p = proc]() { p->wake(); };
        co_await sleep(TimeCat::ArSync);
    }
    --pair->tokens;
    ++pair->aSession;
    pair->aAtBarrier = false;
    SLIPSIM_TRACE_MSG(TraceFlag::Slipstream, proc->eventq().now(),
            "a-stream", "task %d enters session %d (tokens left %d)",
            taskId, pair->aSession, pair->tokens);
}

ArPolicy
TaskContext::currentArPolicy() const
{
    const RunConfig &cfg = rt.config();
    if (cfg.adaptiveAr && pair)
        return arLadder[pair->policyRung];
    return cfg.arPolicy;
}

void
TaskContext::rPreSync()
{
    if (!pair)
        return;

    // Self-invalidation drains overlap with the synchronization.
    if (rt.features().selfInvalidation)
        proc->l2Cache().drainSiQueue();

    // Deviation check: has the A-stream reached the end of this
    // session (within the configured tolerance)?
    const RunConfig &cfg = rt.config();
    if (cfg.recoveryEnabled && !pair->aFinished) {
        int reached = pair->aSession + (pair->aAtBarrier ? 1 : 0);
        if (reached + cfg.recoveryLagSessions < pair->rSession + 1)
            rt.recoverAStream(*pair);
    }

    if (arTokenOnEntry(currentArPolicy()))
        pair->insertToken();
}

void
TaskContext::rPostSync()
{
    if (!pair)
        return;
    if (!arTokenOnEntry(currentArPolicy()))
        pair->insertToken();
    ++pair->rSession;

    const RunConfig &cfg = rt.config();
    if (cfg.adaptiveAr &&
        ++pair->sessionsSinceAdapt >= cfg.adaptInterval) {
        pair->sessionsSinceAdapt = 0;
        adaptArPolicy();
    }
}

void
TaskContext::adaptArPolicy()
{
    // Evaluate this pair's recent fetch quality (the two streams own
    // the node, so the node's classification is the pair's).  Too
    // many premature (A-Only) fetches: the A-stream is running too
    // far ahead — tighten.  Mostly Late activity — either the
    // A-stream's fetches are barely ahead (A-Late) or the A-stream is
    // glued behind its R-stream (R-Late) — loosen.
    const FetchClassStats &fc = proc->l2Cache().fetchClasses();
    std::uint64_t d[2][3];
    for (int s = 0; s < 2; ++s) {
        for (int c = 0; c < 3; ++c) {
            std::uint64_t cur = fc.reads[s][c] + fc.excls[s][c];
            d[s][c] = cur - pair->lastSnap[s][c];
            pair->lastSnap[s][c] = cur;
        }
    }
    constexpr int only = static_cast<int>(FetchClass::Only);
    constexpr int late = static_cast<int>(FetchClass::Late);
    std::uint64_t a_total = d[0][0] + d[0][1] + d[0][2];
    std::uint64_t all = a_total + d[1][0] + d[1][1] + d[1][2];
    if (all < 16)
        return;  // not enough evidence this window

    std::uint64_t glued = d[0][late] + d[1][late];
    if (a_total >= 8 && d[0][only] * 100 > a_total * 30 &&
        pair->policyRung > 0) {
        --pair->policyRung;
        ++pair->policySwitches;
    } else if (glued * 100 > all * 50 && pair->policyRung < 3) {
        ++pair->policyRung;
        ++pair->policySwitches;
    }
}

Coro<void>
TaskContext::barrier(int id)
{
    if (isAStream()) {
        co_await arBarrierPoint();
        co_return;
    }
    rPreSync();
    routineCat = TimeCat::Barrier;
    co_await rt.barrierObj(id).enter(*this);
    routineCat = TimeCat::Stall;
    rPostSync();
}

Coro<void>
TaskContext::lock(int id)
{
    if (isAStream()) {
        ++lockDepth;
        if (!fastForward)
            proc->addBusy(1);
        co_return;
    }
    routineCat = TimeCat::Lock;
    co_await rt.lockObj(id).acquire(*this);
    routineCat = TimeCat::Stall;
    ++lockDepth;
}

Coro<void>
TaskContext::unlock(int id)
{
    if (isAStream()) {
        --lockDepth;
        if (!fastForward)
            proc->addBusy(1);
        co_return;
    }
    --lockDepth;
    routineCat = TimeCat::Lock;
    co_await rt.lockObj(id).release(*this);
    routineCat = TimeCat::Stall;
    if (pair && rt.features().selfInvalidation)
        proc->l2Cache().drainSiQueue();
}

Coro<void>
TaskContext::eventWait(int id)
{
    // An event-wait ends a session, exactly like a barrier.
    if (isAStream()) {
        co_await arBarrierPoint();
        co_return;
    }
    rPreSync();
    routineCat = TimeCat::Barrier;
    co_await rt.flagObj(id).wait(*this);
    routineCat = TimeCat::Stall;
    rPostSync();
}

Coro<void>
TaskContext::eventSet(int id)
{
    if (isAStream()) {
        if (!fastForward)
            proc->addBusy(1);
        co_return;
    }
    routineCat = TimeCat::Barrier;
    co_await rt.flagObj(id).set(*this);
    routineCat = TimeCat::Stall;
}

Coro<std::uint64_t>
TaskContext::globalOp(std::function<std::uint64_t()> fn, Tick cost)
{
    if (isAStream() && pair) {
        std::uint64_t v = co_await consumePublished();
        co_return v;
    }
    if (!fastForward)
        proc->addBusy(cost);
    // The operation may touch host-side workload state shared across
    // nodes; hostOp serializes it (inline in the sequential engine,
    // at the epoch barrier in the parallel one).
    std::uint64_t v = 0;
    co_await hostOp(routineCat, [&v, &fn](Tick, Tick) {
        v = fn();
        return true;
    });
    if (pair) {
        pair->published.push_back(v);
        if (pair->publishWaiter) {
            auto w = std::move(pair->publishWaiter);
            pair->publishWaiter = nullptr;
            w();
        }
    }
    co_return v;
}

std::uint64_t
TaskContext::publishDecision(std::uint64_t v)
{
    SLIPSIM_ASSERT(!isAStream(), "A-stream cannot publish decisions");
    proc->chargeBusy(rt.machine().arSemaphoreTime);
    if (pair) {
        pair->published.push_back(v);
        if (pair->publishWaiter) {
            auto w = std::move(pair->publishWaiter);
            pair->publishWaiter = nullptr;
            w();
        }
    }
    return v;
}

Coro<std::uint64_t>
TaskContext::consumeDecision()
{
    SLIPSIM_ASSERT(isAStream() && pair,
            "consumeDecision is for A-streams");
    std::uint64_t v = co_await consumePublished();
    co_return v;
}

Coro<std::uint64_t>
TaskContext::consumePublished()
{
    size_t idx = publishedIndex++;
    if (fastForward) {
        SLIPSIM_ASSERT(idx < pair->published.size(),
                "fast-forward ran past the published-value log");
        co_return pair->published[idx];
    }
    proc->chargeBusy(rt.machine().arSemaphoreTime);
    while (pair->published.size() <= idx) {
        pair->publishWaiter = [p = proc]() { p->wake(); };
        co_await sleep(TimeCat::ArSync);
    }
    co_return pair->published[idx];
}

} // namespace slipsim
