/**
 * @file
 * Execution modes and slipstream configuration (Figure 2 of the paper).
 */

#ifndef SLIPSIM_RUNTIME_MODE_HH
#define SLIPSIM_RUNTIME_MODE_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace slipsim
{

struct SimTracer;

/** How the two processors of each CMP are used. */
enum class Mode
{
    Single,      //!< one task per CMP, second processor idle
    Double,      //!< two independent parallel tasks per CMP
    Slipstream,  //!< R-stream + reduced A-stream per CMP
};

/** A-R synchronization policies (Section 3.2 / Figure 5). */
enum class ArPolicy
{
    OneTokenLocal,    //!< L1: A may lead by a session; token on R entry
    ZeroTokenLocal,   //!< L0: token on R entry, no initial lead
    ZeroTokenGlobal,  //!< G0: token on R exit, no initial lead (tightest)
    OneTokenGlobal,   //!< G1: token on R exit, one-session lead (loosest
                      //!< of the global pair)
};

/** Initial token pool for a policy. */
constexpr int
arInitialTokens(ArPolicy p)
{
    return (p == ArPolicy::OneTokenLocal ||
            p == ArPolicy::OneTokenGlobal) ? 1 : 0;
}

/** True if the R-stream inserts the token when *entering* the barrier
 *  (local policies); false for insertion on exit (global policies). */
constexpr bool
arTokenOnEntry(ArPolicy p)
{
    return p == ArPolicy::OneTokenLocal || p == ArPolicy::ZeroTokenLocal;
}

const char *modeName(Mode m);
const char *arPolicyName(ArPolicy p);
ArPolicy arPolicyFromName(const std::string &name);

/**
 * Tightness ladder for the adaptive controller, loosest (largest
 * A-stream lead) to tightest: L1 > G1 > L0 > G0.
 */
constexpr ArPolicy arLadder[4] = {
    ArPolicy::ZeroTokenGlobal,  // tightest
    ArPolicy::ZeroTokenLocal,
    ArPolicy::OneTokenGlobal,
    ArPolicy::OneTokenLocal,    // loosest
};

/** Rung of @p p on the ladder (0 = tightest). */
constexpr int
arLadderIndex(ArPolicy p)
{
    for (int i = 0; i < 4; ++i) {
        if (arLadder[i] == p)
            return i;
    }
    return 0;
}

/** Optional slipstream optimizations (Sections 3.3 and 4). */
struct SlipFeatures
{
    /** Convert skipped same-session non-CS stores into exclusive
     *  prefetches (basic slipstream prefetching, Section 3.3). */
    bool storeConvert = true;
    /** A-stream issues transparent loads when ahead / in a critical
     *  section (Section 4.1). */
    bool transparentLoads = false;
    /** Directory sends self-invalidation hints; L2 drains its SI queue
     *  at sync points (Section 4.2). */
    bool selfInvalidation = false;
};

/** Full run configuration for one experiment. */
struct RunConfig
{
    Mode mode = Mode::Single;
    ArPolicy arPolicy = ArPolicy::OneTokenLocal;
    SlipFeatures features;

    /**
     * Adaptive A-R synchronization (a "future work" item of the
     * paper): each pair starts at arPolicy and re-evaluates every
     * adaptInterval sessions — too many premature (A-Only) fetches
     * tighten the policy, too many Late fetches loosen it.
     */
    bool adaptiveAr = false;
    /** Sessions between adaptive re-evaluations. */
    int adaptInterval = 4;

    /** Enable A-stream deviation recovery (kill + re-fork). */
    bool recoveryEnabled = true;
    /** Sessions of A lag tolerated before declaring deviation.
     *  0 reproduces the paper's strict check; the default of 1 avoids
     *  spurious kills from sub-session timing noise (DESIGN.md §5.5). */
    int recoveryLagSessions = 1;

    /** Verify workload results against the reference after the run. */
    bool verify = true;

    std::uint64_t seed = 1;

    /**
     * Intra-run parallel simulation (DESIGN.md §2.9).  0 (the default)
     * selects the sequential engine: one global event queue, bit-exact
     * with every prior release.  N >= 1 selects the epoch-windowed
     * parallel engine with N worker threads and per-node event queues;
     * its output is byte-identical for every N (the worker count only
     * changes wall-clock time), but it is a distinct — equally
     * deterministic — timing model from the sequential engine, because
     * cross-node effects land at conservative epoch barriers instead
     * of synchronously.
     */
    int simJobs = 0;

    // --- observability (src/obs/) ----------------------------------------

    /** When non-empty, runExperiment attaches a ChromeTracer and
     *  writes the Chrome trace-event JSON here at the end. */
    std::string tracePath;

    /** Externally-owned tracer to attach instead (e.g. perf_smoke's
     *  CountingTracer).  Ignored when tracePath is set. */
    SimTracer *tracer = nullptr;
};

} // namespace slipsim

#endif // SLIPSIM_RUNTIME_MODE_HH
