/**
 * @file
 * Per-pair A-R synchronization state: the token semaphore (a shared
 * hardware register in the paper) plus the channel through which the
 * R-stream passes global-operation results and dynamic-scheduling
 * decisions to its A-stream.
 */

#ifndef SLIPSIM_RUNTIME_AR_SYNC_HH
#define SLIPSIM_RUNTIME_AR_SYNC_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace slipsim
{

/** Shared state of one (R-stream, A-stream) pair. */
struct SlipPair
{
    TaskId tid = 0;

    /** Sessions the R-stream has completed (barriers/event-waits
     *  passed). */
    int rSession = 0;
    /** Sessions the A-stream has entered. */
    int aSession = 0;

    /** Token semaphore (atomic read-modify-write register). */
    int tokens = 0;

    /** A is blocked at its barrier point waiting for a token. */
    bool aAtBarrier = false;
    /** Wake closure for an A-stream blocked on the token semaphore. */
    std::function<void()> aTokenWaiter;

    /** A-stream finished its task. */
    bool aFinished = false;

    /** Ordered results of R-only global operations / scheduling
     *  decisions, consumed by the A-stream in the same order. */
    std::vector<std::uint64_t> published;
    /** Wake closure for an A-stream waiting on the next published
     *  value. */
    std::function<void()> publishWaiter;

    /** Times this pair's A-stream was killed and re-forked. */
    std::uint64_t recoveries = 0;

    // --- adaptive A-R synchronization -----------------------------------
    /** Policy currently in force for this pair. */
    int policyRung = 0;
    /** Policy switches performed by the adaptive controller. */
    std::uint64_t policySwitches = 0;
    /** Classification snapshot at the last evaluation
     *  ([A=0/R=1][Timely/Late/Only], reads + exclusives). */
    std::uint64_t lastSnap[2][3] = {{0, 0, 0}, {0, 0, 0}};
    /** Sessions since the last evaluation. */
    int sessionsSinceAdapt = 0;

    /** R inserts a token; unblocks a waiting A-stream. */
    void
    insertToken()
    {
        ++tokens;
        if (aTokenWaiter) {
            auto w = std::move(aTokenWaiter);
            aTokenWaiter = nullptr;
            w();
        }
    }

    /** Reset A-side transient state on recovery. */
    void
    resetForRecovery(int initial_tokens)
    {
        aSession = 0;           // re-counted during fast-forward
        tokens = initial_tokens;
        aAtBarrier = false;
        aTokenWaiter = nullptr;
        publishWaiter = nullptr;
        aFinished = false;
    }
};

} // namespace slipsim

#endif // SLIPSIM_RUNTIME_AR_SYNC_HH
