/**
 * @file
 * Synchronization objects of the slipstream-aware parallel library.
 *
 * Barriers, locks, and event flags occupy real lines of the simulated
 * shared address space: every arrival/acquire performs an exclusive
 * access on the object's line, so synchronization generates authentic
 * migratory coherence traffic (which the self-invalidation heuristic
 * keys on).  Blocked waiters sleep on a wake list rather than spinning
 * (test-and-test-and-set with local spinning behaves this way).
 */

#ifndef SLIPSIM_RUNTIME_SYNC_OBJECTS_HH
#define SLIPSIM_RUNTIME_SYNC_OBJECTS_HH

#include <deque>
#include <vector>

#include "obs/stats_registry.hh"
#include "sim/coro.hh"
#include "sim/types.hh"

namespace slipsim
{

class Processor;
class TaskContext;

/** Centralized sense-reversing barrier over two shared lines. */
class SyncBarrier
{
  public:
    SyncBarrier(int id, int participants, Addr ctr_line, Addr flag_line)
        : id_(id), participants(participants), ctrLine(ctr_line),
          flagLine(flag_line)
    {}

    /** R-stream arrival: counter update, then wait or release. */
    Coro<void> enter(TaskContext &ctx);

    int id() const { return id_; }
    int participantCount() const { return participants; }

    /** Tasks currently blocked (diagnostics). */
    size_t waiting() const { return waiters.size(); }

    std::uint64_t episodes() const { return generation; }

    /** Register under @p prefix (e.g. "sync.barrier0"). */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.addCounter(prefix + ".episodes", generation);
    }

  private:
    int id_;
    int participants;
    Addr ctrLine;
    Addr flagLine;
    int arrived = 0;
    Counter generation;
    std::vector<Processor *> waiters;
};

/** Queue lock over one shared line. */
class SyncLock
{
  public:
    SyncLock(int id, Addr line) : id_(id), line(line) {}

    /** Acquire (R-streams only; A-streams skip locks entirely). */
    Coro<void> acquire(TaskContext &ctx);

    /** Release and wake the next waiter. */
    Coro<void> release(TaskContext &ctx);

    int id() const { return id_; }
    bool isHeld() const { return held; }
    size_t waiting() const { return q.size(); }
    std::uint64_t acquisitions() const { return acquires; }

    /** Register under @p prefix (e.g. "sync.lock0"). */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.addCounter(prefix + ".acquisitions", acquires);
    }

  private:
    int id_;
    Addr line;
    bool held = false;
    std::deque<Processor *> q;
    Counter acquires;
};

/** One-shot (resettable) event flag over one shared line. */
class EventFlag
{
  public:
    EventFlag(int id, Addr line) : id_(id), line(line) {}

    /** Block until the flag is set (a session boundary, like a
     *  barrier). */
    Coro<void> wait(TaskContext &ctx);

    /** Set the flag and wake all waiters. */
    Coro<void> set(TaskContext &ctx);

    /** Host-level reset for reuse across phases. */
    void clear() { isSet = false; }

    int id() const { return id_; }
    bool set_p() const { return isSet; }
    size_t waiting() const { return waiters.size(); }
    std::uint64_t setCount() const { return sets; }

    /** Register under @p prefix (e.g. "sync.flag0"). */
    void
    registerStats(StatsRegistry &reg, const std::string &prefix) const
    {
        reg.addCounter(prefix + ".sets", sets);
    }

  private:
    int id_;
    Addr line;
    bool isSet = false;
    Counter sets;
    std::vector<Processor *> waiters;
};

} // namespace slipsim

#endif // SLIPSIM_RUNTIME_SYNC_OBJECTS_HH
