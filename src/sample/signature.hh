/**
 * @file
 * Interval signatures: the feature vector deterministic k-means
 * clusters (DESIGN.md §14).
 *
 * A signature summarizes ONE profiling interval (an interval-delta
 * StatsSnapshot, see StatsSnapshot::deltaFrom) by the activity that
 * tracks slipstream's phase behavior:
 *
 *   per node n of the CMP grid, in node order:
 *     node<n>.l2.readMisses + node<n>.l2.exclMisses   (L2 misses)
 *     node<n>.dir.requests (+ subcounters)            (dir traffic)
 *     node<n>.l2.si.invalidated + .si.downgraded      (SI sweeps)
 *     node<n>.l2.aReadMisses                          (A-stream load)
 *   then three global features:
 *     run.recoveries                                  (A-stream kills)
 *     run.events                                      (event volume)
 *     run.cycles                                      (interval span;
 *                                  constant except the last interval)
 *
 * Feature order is fixed by construction, so the vector — and hence
 * the clustering — is deterministic.  Before clustering, each
 * dimension is scaled by its max over all intervals (all-zero
 * dimensions are left untouched), which keeps high-volume counters
 * from drowning the rare-but-telling ones (recoveries).
 */

#ifndef SLIPSIM_SAMPLE_SIGNATURE_HH
#define SLIPSIM_SAMPLE_SIGNATURE_HH

#include <string>
#include <vector>

#include "obs/stats_registry.hh"

namespace slipsim
{

/** Feature names, in vector order, for @p num_cmps nodes. */
std::vector<std::string> signatureFeatureNames(int num_cmps);

/** Extract the signature of one interval-delta snapshot. */
std::vector<double> signatureVector(const StatsSnapshot &delta,
                                    int num_cmps);

/**
 * Per-dimension max-abs normalization over a set of signatures (in
 * place).  Dimensions whose max is zero are left as-is.
 */
void normalizeSignatures(std::vector<std::vector<double>> &sigs);

} // namespace slipsim

#endif // SLIPSIM_SAMPLE_SIGNATURE_HH
