/**
 * @file
 * Deterministic k-means for interval signatures (DESIGN.md §14).
 *
 * Sampled simulation must pick the same representatives on every
 * host, build, and thread count, so this clustering is PRNG-free and
 * fully order-pinned:
 *
 *  - Seeding: center 0 is point 0; each further center is the point
 *    maximizing its distance to the nearest already-chosen center
 *    (farthest-point traversal), ties broken by lowest point index.
 *  - Iteration: a fixed cap of kmeansIterations Lloyd rounds, with an
 *    early exit only when the assignment is exactly unchanged (itself
 *    a deterministic condition).
 *  - Assignment: nearest centroid by squared Euclidean distance, ties
 *    broken by lowest cluster index.
 *  - Representative: the member closest to its centroid, ties broken
 *    by lowest point index.
 *
 * Degenerate inputs stay pinned: k >= n puts every point in its own
 * cluster (exhaustive sampling); all-identical points collapse into
 * cluster 0 and the remaining clusters come back empty.  Empty
 * clusters are reported with size 0 and no representative; callers
 * drop them.
 */

#ifndef SLIPSIM_SAMPLE_KMEANS_HH
#define SLIPSIM_SAMPLE_KMEANS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slipsim
{

/** Fixed Lloyd-iteration cap (part of the determinism contract). */
constexpr int kmeansIterations = 25;

struct KMeansResult
{
    /** Cluster id of every input point. */
    std::vector<int> assign;
    /** Member count per cluster (0 = empty, dropped by callers). */
    std::vector<std::uint64_t> sizes;
    /** Representative point index per cluster (meaningless where
     *  sizes[c] == 0). */
    std::vector<std::size_t> representative;
    /** Final centroids (dimension = input dimension). */
    std::vector<std::vector<double>> centroids;
};

/**
 * Cluster @p points (all the same dimension) into at most @p k
 * clusters under the determinism rules above.  fatal() on empty
 * input, k < 1, or ragged dimensions.
 */
KMeansResult kmeansDeterministic(
    const std::vector<std::vector<double>> &points, std::size_t k);

} // namespace slipsim

#endif // SLIPSIM_SAMPLE_KMEANS_HH
