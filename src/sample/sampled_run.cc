/**
 * @file
 * Sampled cell execution: profile, replay-reconstruction, and the
 * checkpoint-backed representative audit (DESIGN.md §14).
 */

#include "sample/sampled_run.hh"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/cell_run.hh"
#include "core/build_info.hh"
#include "core/cell.hh"
#include "core/config_hash.hh"
#include "sample/kmeans.hh"
#include "sample/signature.hh"
#include "sim/logging.hh"

namespace slipsim
{

namespace
{

/** The full-fidelity point a sampled point describes: every sampling
 *  field folded back to its default.  This is the cell the profile
 *  pass actually simulates, and the identity (renderBaseCell) plans
 *  are validated against. */
SweepPoint
basePoint(const SweepPoint &pt)
{
    SweepPoint base = pt;
    base.sampleMode = SampleMode::Off;
    base.sampleInterval = SweepPoint::defaultSampleInterval;
    base.sampleClusters = SweepPoint::defaultSampleClusters;
    base.samplePlan.clear();
    base.sampleDir.clear();
    base.sampleCkptOut.clear();
    return base;
}

const char *
engineString(const SweepPoint &pt)
{
    return pt.cfg.simJobs > 0 ? "parallel" : "sequential";
}

std::string
procPrefix(const Processor &p)
{
    return "node" + std::to_string(p.nodeId()) + ".proc" +
           std::to_string(p.slotId());
}

/**
 * Cumulative registry snapshot of a paused run, mirroring exactly what
 * CellRun::finish() freezes at completion: every registered component
 * metric plus the injected run.cycles / run.events / run.recoveries
 * (and run.policySwitches under slipstream) counters.  Matching
 * finish() is what makes the final interval's delta — computed against
 * finish()'s own snapshot — line up with the pause-time ones, so the
 * deltas of consecutive intervals merge back into the final snapshot
 * exactly.
 */
StatsSnapshot
captureCumulative(CellRun &run)
{
    System &sys = run.system();
    ParallelRuntime &rt = run.runtime();

    StatsRegistry reg;
    sys.memory().registerStats(reg);
    for (Processor *p : sys.procPtrs())
        p->registerStats(reg, procPrefix(*p));
    rt.registerStats(reg);
    StatsSnapshot snap = reg.snapshot();

    std::uint64_t run_events = sys.eventq().processed();
    if (run.config().simJobs > 0) {
        run_events = 0;
        int cmps = run.machineParams().numCmps;
        for (NodeId n = 0; n < static_cast<NodeId>(cmps); ++n)
            run_events += sys.nodeEventq(n).processed();
    }
    snap.setCounter("run.cycles", run.now());
    snap.setCounter("run.events", run_events);
    snap.setCounter("run.recoveries", rt.totalRecoveries());
    if (run.config().mode == Mode::Slipstream) {
        std::uint64_t switches = 0;
        for (TaskId t = 0; t < rt.numTasks(); ++t)
            switches += static_cast<std::uint64_t>(
                rt.pair(t).policySwitches);
        snap.setCounter("run.policySwitches", switches);
    }
    return snap;
}

/** mkdir -p for the default plan directory (fatal on failure). */
void
ensureDir(const std::string &dir)
{
    std::size_t pos = 0;
    while (pos < dir.size()) {
        std::size_t slash = dir.find('/', pos);
        if (slash == std::string::npos)
            slash = dir.size();
        std::string prefix = dir.substr(0, slash);
        pos = slash + 1;
        if (prefix.empty() || prefix == ".")
            continue;
        if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
            fatal("cannot create sample directory '%s': %s",
                  prefix.c_str(), std::strerror(errno));
        }
    }
}

/**
 * Fail-closed plan validation, in the same spirit as checkpoint
 * restore: a plan is only usable by the exact build, base config,
 * engine, and sampling parameters that produced it.
 */
void
validatePlan(const SweepPoint &pt, const SamplePlan &plan,
             const char *what)
{
    if (plan.gitRev != buildGitRev()) {
        fatal("%s: plan was profiled at git revision %s but this "
              "binary is %s; re-profile",
              what, plan.gitRev.c_str(), buildGitRev());
    }
    std::string want = renderBaseCell(pt);
    if (plan.baseConfig != want) {
        fatal("%s: plan was profiled for config\n  %s\nbut this cell "
              "is\n  %s\nrefusing to reconstruct",
              what, plan.baseConfig.c_str(), want.c_str());
    }
    if (plan.engine != engineString(pt)) {
        fatal("%s: plan was profiled under the %s engine but this run "
              "uses the %s engine (interval pause points differ); "
              "re-profile",
              what, plan.engine.c_str(), engineString(pt));
    }
    if (plan.interval != pt.sampleInterval) {
        fatal("%s: plan was profiled with sample-interval=%llu but "
              "this cell asks for %llu; re-profile or pass the "
              "matching sample-interval",
              what,
              static_cast<unsigned long long>(plan.interval),
              static_cast<unsigned long long>(pt.sampleInterval));
    }
    if (plan.clustersRequested != pt.sampleClusters) {
        fatal("%s: plan was profiled with sample-clusters=%d but this "
              "cell asks for %d; re-profile or pass the matching "
              "sample-clusters",
              what, plan.clustersRequested, pt.sampleClusters);
    }
}

/** First differing byte offset, for replay-verify diagnostics. */
std::size_t
firstMismatch(const std::vector<std::uint8_t> &a,
              const std::vector<std::uint8_t> &b)
{
    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i])
            return i;
    }
    return n;
}

/**
 * Profile pass: run the base cell to completion, pausing every K
 * ticks for a cumulative snapshot; cluster the interval deltas and
 * write the plan (plus the optional checkpoint set).  Returns the
 * ordinary full-fidelity result — a profile IS a full run, so its
 * stats output is byte-identical to the unsampled cell's.
 */
ExperimentResult
runProfile(const SweepPoint &pt)
{
    SweepPoint base = basePoint(pt);
    const Tick K = pt.sampleInterval;

    CellRun run(base);
    std::vector<StatsSnapshot> deltas;
    std::vector<Tick> starts;
    starts.push_back(0);
    StatsSnapshot prev;  // empty: interval 0 deltas against zero
    std::uint64_t bound_idx = 1;
    while (!run.runTo(bound_idx * K)) {
        StatsSnapshot cum = captureCumulative(run);
        deltas.push_back(cum.deltaFrom(prev));
        prev = std::move(cum);
        starts.push_back(run.now());
        ++bound_idx;
    }
    ExperimentResult res = run.finish();
    // The last interval's delta comes off finish()'s own snapshot, so
    // summing every interval delta reproduces it exactly (the
    // completion-time finalize passes are purely additive).
    deltas.push_back(res.snap.deltaFrom(prev));
    const std::uint64_t n = deltas.size();

    std::vector<std::vector<double>> sigs;
    sigs.reserve(n);
    for (const StatsSnapshot &d : deltas)
        sigs.push_back(signatureVector(d, base.machine.numCmps));
    normalizeSignatures(sigs);
    KMeansResult km = kmeansDeterministic(
        sigs, static_cast<std::size_t>(pt.sampleClusters));

    SamplePlan plan;
    plan.gitRev = buildGitRev();
    plan.baseConfig = renderBaseCell(pt);
    plan.engine = engineString(pt);
    plan.interval = K;
    plan.clustersRequested = pt.sampleClusters;
    plan.numIntervals = n;
    plan.endTick = res.cycles;
    plan.verified = res.verified;
    ParallelRuntime &rt = run.runtime();
    for (TaskId t = 0; t < rt.numTasks(); ++t)
        plan.rProcs.push_back(procPrefix(rt.taskCtx(t).processor()));
    if (base.cfg.mode == Mode::Slipstream) {
        for (TaskId t = 0; t < rt.numTasks(); ++t)
            plan.aProcs.push_back(procPrefix(rt.aCtx(t).processor()));
    }
    // Non-empty clusters, ascending by representative interval index.
    std::vector<std::size_t> order;
    for (std::size_t c = 0; c < km.sizes.size(); ++c) {
        if (km.sizes[c] > 0)
            order.push_back(c);
    }
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return km.representative[a] < km.representative[b];
              });
    std::vector<const StatsSnapshot *> rep_deltas;
    rep_deltas.reserve(order.size());
    for (std::size_t c : order)
        rep_deltas.push_back(&deltas[km.representative[c]]);
    plan.statPaths = counterPathUnion(rep_deltas);
    for (std::size_t c : order) {
        SampleCluster sc;
        sc.repIndex = km.representative[c];
        sc.startTick = starts[sc.repIndex];
        sc.members = km.sizes[c];
        splitDeltaColumns(deltas[sc.repIndex], plan.statPaths,
                          sc.counts, sc.other);
        if (c == static_cast<std::size_t>(km.assign[n - 1]))
            plan.finalCluster = plan.clusters.size();
        plan.clusters.push_back(std::move(sc));
    }

    std::string path = samplePlanPath(pt);
    if (pt.samplePlan.empty())
        ensureDir(pt.sampleDir.empty() ? "sample-plans" : pt.sampleDir);
    writeSamplePlan(path, plan);

    if (!pt.sampleCkptOut.empty()) {
        // Second deterministic pass of the same run, capturing the
        // serialized state at every representative's start bound —
        // the multi-point set auditRepresentative() restores from.
        CkptSet set;
        set.gitRev = buildGitRev();
        set.config = renderPrefixCell(base);
        set.engine = base.cfg.simJobs > 0 ? CkptEngine::Parallel
                                          : CkptEngine::Sequential;
        CellRun pass2(base);
        for (const SampleCluster &c : plan.clusters) {
            if (c.repIndex > 0 &&
                pass2.runTo(c.repIndex * K)) {
                fatal("sample-ckpt-out: capture pass completed (tick "
                      "%llu) before representative %llu's start bound; "
                      "the run is not deterministic",
                      static_cast<unsigned long long>(
                          pass2.runtime().endTick()),
                      static_cast<unsigned long long>(c.repIndex));
            }
            if (pass2.now() != c.startTick) {
                fatal("sample-ckpt-out: capture pass paused at tick "
                      "%llu for representative %llu but the profile "
                      "paused at %llu; the run is not deterministic",
                      static_cast<unsigned long long>(pass2.now()),
                      static_cast<unsigned long long>(c.repIndex),
                      static_cast<unsigned long long>(c.startTick));
            }
            if (!set.points.empty() &&
                set.points.back().tick >= c.startTick) {
                fatal("sample-ckpt-out: representatives %llu and the "
                      "previous one pause at the same tick %llu "
                      "(empty interval); decrease sample-interval",
                      static_cast<unsigned long long>(c.repIndex),
                      static_cast<unsigned long long>(c.startTick));
            }
            set.points.push_back({c.startTick, pass2.statePayload()});
        }
        writeCkptSetFile(pt.sampleCkptOut, set);
    }

    return res;
}

} // namespace

std::string
samplePlanPath(const SweepPoint &pt)
{
    if (!pt.samplePlan.empty())
        return pt.samplePlan;
    std::string dir =
        pt.sampleDir.empty() ? "sample-plans" : pt.sampleDir;
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(renderBaseCell(pt))));
    return dir + "/" + hex + ".plan.json";
}

ExperimentResult
reconstructFromPlan(const SweepPoint &pt, const SamplePlan &plan)
{
    validatePlan(pt, plan, "sample=replay");

    // Weight-blended reconstruction.  All-integer for counters and
    // histogram mass, so exhaustive sampling (every interval its own
    // weight-1 cluster) rebuilds the full run's snapshot byte for
    // byte.  Gauges take the latest representative's end-of-interval
    // value (clusters are ascending by interval, so last write wins —
    // the same rule StatsSnapshot::merge applies), and histogram
    // maxima the max over representatives' cumulative maxima.
    StatsSnapshot recon;
    const std::size_t npaths = plan.statPaths.size();
    std::vector<std::uint64_t> totals(npaths, 0);
    for (const SampleCluster &c : plan.clusters) {
        const std::uint64_t w = c.members;
        // Counters straight off the columnar array — the loop the
        // whole plan format is shaped around.
        for (std::size_t i = 0; i < npaths; ++i)
            totals[i] += c.counts[i] * w;
        for (const auto &[path, v] : c.other.all()) {
            switch (v.kind) {
              case StatsSnapshot::Kind::Gauge:
                recon.setGauge(path, v.gauge);
                break;
              case StatsSnapshot::Kind::Hist: {
                std::uint64_t buckets[Histogram::numBuckets] = {};
                std::uint64_t sum = 0;
                std::uint64_t mx = 0;
                if (const Histogram *eh = recon.histogram(path)) {
                    for (int b = 0; b < Histogram::numBuckets; ++b)
                        buckets[b] = eh->bucket(b);
                    sum = eh->total();
                    mx = eh->maxValue();
                }
                for (int b = 0; b < Histogram::numBuckets; ++b)
                    buckets[b] += v.hist.bucket(b) * w;
                sum += v.hist.total() * w;
                mx = std::max(mx, v.hist.maxValue());
                Histogram h;
                h.setRaw(buckets, Histogram::numBuckets, sum, mx);
                recon.setHistogram(path, h);
                break;
              }
              default:
                break;  // counters cannot appear (planFromJson)
            }
        }
    }
    for (std::size_t i = 0; i < npaths; ++i)
        recon.setCounter(plan.statPaths[i], totals[i]);

    ExperimentResult r;
    r.workload = pt.workload;
    r.mode = pt.cfg.mode;
    r.policy = pt.cfg.arPolicy;
    r.features = pt.cfg.features;
    r.numCmps = pt.machine.numCmps;
    r.protocol = pt.machine.protocol;
    r.cycles = recon.counter("run.cycles");
    r.recoveries = recon.counter("run.recoveries");
    r.verified = plan.verified;

    // Figure fields re-derived from the reconstructed counters with
    // the exact queries (and float operation order) finish() uses.
    const int ntasks = static_cast<int>(plan.rProcs.size());
    for (int t = 0; t < ntasks; ++t) {
        for (int c = 0; c < numTimeCats; ++c) {
            r.rCats[c] += static_cast<double>(recon.counter(
                plan.rProcs[t] + ".cycles." +
                timeCatName(static_cast<TimeCat>(c))));
        }
    }
    for (double &c : r.rCats)
        c /= ntasks;
    if (!plan.aProcs.empty()) {
        for (int t = 0; t < ntasks; ++t) {
            for (int c = 0; c < numTimeCats; ++c) {
                r.aCats[c] += static_cast<double>(recon.counter(
                    plan.aProcs[t] + ".cycles." +
                    timeCatName(static_cast<TimeCat>(c))));
            }
        }
        for (double &c : r.aCats)
            c /= ntasks;
    }
    static const char *streams[2] = {"A", "R"};
    static const char *classes[3] = {"Timely", "Late", "Only"};
    for (int n = 0; n < r.numCmps; ++n) {
        std::string l2 = "node" + std::to_string(n) + ".l2";
        std::string dir = "node" + std::to_string(n) + ".dir";
        for (int s = 0; s < 2; ++s) {
            for (int c = 0; c < 3; ++c) {
                r.clsReads[s][c] += recon.counter(
                    l2 + ".class.read." + streams[s] + classes[c]);
                r.clsExcls[s][c] += recon.counter(
                    l2 + ".class.excl." + streams[s] + classes[c]);
            }
        }
        r.aReadMisses += recon.counter(l2 + ".aReadMisses");
        r.siInvalidated += recon.counter(l2 + ".si.invalidated");
        r.siDowngraded += recon.counter(l2 + ".si.downgraded");
        r.transparentReplies +=
            recon.counter(dir + ".transparentReplies");
        r.upgradedReplies += recon.counter(dir + ".upgradedReplies");
    }
    r.stats.set("run.cycles", static_cast<double>(r.cycles));
    r.stats.set("run.events",
                static_cast<double>(recon.counter("run.events")));
    r.stats.set("run.recoveries", static_cast<double>(r.recoveries));
    if (r.mode == Mode::Slipstream) {
        r.stats.set("run.policySwitches",
                    static_cast<double>(
                        recon.counter("run.policySwitches")));
    }

    r.sampled = true;
    r.sampleIntervals = plan.numIntervals;
    for (const SampleCluster &c : plan.clusters)
        r.sampleWeights.emplace_back(c.repIndex, c.members);
    r.snap = std::move(recon);
    return r;
}

ExperimentResult
runCellSampled(const SweepPoint &pt)
{
    SLIPSIM_ASSERT(pt.sampleMode != SampleMode::Off,
                   "runCellSampled on an unsampled point");
    if (pt.sampleMode == SampleMode::Profile)
        return runProfile(pt);
    if (!pt.cfg.tracePath.empty()) {
        fatal("sample=replay reconstructs statistics without "
              "simulating; there is no execution to trace "
              "(drop trace= or profile instead)");
    }
    SamplePlan plan = readSamplePlan(samplePlanPath(pt));
    return reconstructFromPlan(pt, plan);
}

std::size_t
auditRepresentative(const SweepPoint &pt, const SamplePlan &plan,
                    const CkptSet &set, std::size_t cluster_idx)
{
    validatePlan(pt, plan, "sample audit");
    if (cluster_idx >= plan.clusters.size()) {
        fatal("sample audit: cluster %zu out of range (%zu clusters)",
              cluster_idx, plan.clusters.size());
    }
    const SampleCluster &c = plan.clusters[cluster_idx];

    SweepPoint base = basePoint(pt);
    if (set.gitRev != buildGitRev()) {
        fatal("sample audit: checkpoint set was taken at git revision "
              "%s but this binary is %s; refusing to restore",
              set.gitRev.c_str(), buildGitRev());
    }
    std::string want = renderPrefixCell(base);
    if (set.config != want) {
        fatal("sample audit: checkpoint set was taken for config\n"
              "  %s\nbut this cell is\n  %s\nrefusing to restore",
              set.config.c_str(), want.c_str());
    }
    CkptEngine eng = base.cfg.simJobs > 0 ? CkptEngine::Parallel
                                          : CkptEngine::Sequential;
    if (set.engine != eng) {
        fatal("sample audit: checkpoint set engine does not match "
              "this run's engine; refusing to restore");
    }
    const CkptSet::Point *point = nullptr;
    for (const CkptSet::Point &p : set.points) {
        if (p.tick == c.startTick) {
            point = &p;
            break;
        }
    }
    if (!point) {
        fatal("sample audit: checkpoint set has no point at tick %llu "
              "(representative %llu's start); set and plan are from "
              "different profiles",
              static_cast<unsigned long long>(c.startTick),
              static_cast<unsigned long long>(c.repIndex));
    }

    // Replay-verify the restore, exactly like restore-from: re-run
    // the prefix and demand byte-identity with the stored payload
    // before trusting the state.
    CellRun run(base);
    if (c.repIndex > 0 && run.runTo(c.repIndex * plan.interval)) {
        fatal("sample audit: program completed (tick %llu) before "
              "representative %llu's start bound; plan does not match "
              "this run",
              static_cast<unsigned long long>(run.runtime().endTick()),
              static_cast<unsigned long long>(c.repIndex));
    }
    if (run.now() != c.startTick) {
        fatal("sample audit: replay paused at tick %llu but the "
              "profile paused at %llu; plan does not match this run",
              static_cast<unsigned long long>(run.now()),
              static_cast<unsigned long long>(c.startTick));
    }
    std::vector<std::uint8_t> replayed = run.statePayload();
    if (replayed != point->payload) {
        fatal("sample audit: replay-verify failed for representative "
              "%llu: recomputed state (%zu bytes) diverges from the "
              "checkpoint payload (%zu bytes) at byte %zu",
              static_cast<unsigned long long>(c.repIndex),
              replayed.size(), point->payload.size(),
              firstMismatch(replayed, point->payload));
    }

    // Simulate just this representative's interval and demand its
    // delta match what the plan recorded.
    StatsSnapshot before = captureCumulative(run);
    StatsSnapshot after;
    if (run.runTo((c.repIndex + 1) * plan.interval))
        after = run.finish().snap;
    else
        after = captureCumulative(run);
    StatsSnapshot delta = after.deltaFrom(before);
    if (!clusterMatchesDelta(plan, c, delta)) {
        fatal("sample audit: re-simulated delta for representative "
              "%llu diverges from the plan's recorded delta",
              static_cast<unsigned long long>(c.repIndex));
    }
    return replayed.size();
}

} // namespace slipsim
