/**
 * @file
 * Sampled cell execution (DESIGN.md §14): the profile pass that turns
 * one full-fidelity run into a sample plan, the replay pass that
 * reconstructs a full run's statistics from the plan's weighted
 * representatives without simulating, and the checkpoint-backed audit
 * that re-simulates one representative interval from its restored
 * (replay-verified) snapshot and demands its delta match the plan.
 *
 * runSweep() routes every SweepPoint with sampleMode != Off here.
 *
 *  - sample=profile: run the BASE cell (sampling keys folded) to
 *    completion, pausing every sample-interval=K ticks to take a
 *    cumulative registry snapshot; interval deltas
 *    (StatsSnapshot::deltaFrom) feed signature extraction and
 *    deterministic k-means; the plan (representative deltas + weights)
 *    is written to samplePlanPath().  Returns the ordinary
 *    full-fidelity ExperimentResult — a profile IS a full run.  With
 *    sample-ckpt-out=, a second deterministic pass of the same run
 *    captures a multi-point checkpoint set (ckpt/snapshot.hh) with one
 *    payload per representative start.
 *
 *  - sample=replay: load + validate the plan (revision, base config,
 *    engine, interval, cluster request all must match — fail closed,
 *    like checkpoint restore) and reconstruct the result as the
 *    weight-blended sum of representative deltas: counters and
 *    histogram mass scale by cluster weight and sum; gauges and
 *    histogram maxima come from the cluster holding the final
 *    interval.  No simulation happens — this is the >=5x speed path —
 *    and the result is marked sampled (sweepPointJson() emits
 *    "sampled": true with the weights).
 *
 * The defining identity (unit-tested): with sample-clusters >= the
 * interval count every interval is its own weight-1 representative,
 * and the reconstructed registry snapshot — all-integer arithmetic —
 * is byte-for-byte the straight run's stats JSON.
 */

#ifndef SLIPSIM_SAMPLE_SAMPLED_RUN_HH
#define SLIPSIM_SAMPLE_SAMPLED_RUN_HH

#include <string>

#include "ckpt/snapshot.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "sample/plan.hh"

namespace slipsim
{

/**
 * Resolve the plan file of @p pt: sample-plan= verbatim when given,
 * else <sample-dir>/<fnv1a64 hex of renderBaseCell(pt)>.plan.json
 * with sample-dir defaulting to "sample-plans".  Keyed by the BASE
 * config, so one profile serves any replay knob combination of the
 * same underlying cell.
 */
std::string samplePlanPath(const SweepPoint &pt);

/**
 * Run one sampled sweep point (sampleMode must not be Off).  Profile
 * points run fully and write their plan (and optional checkpoint
 * set); replay points reconstruct from the plan without simulating.
 * fatal() on plan validation failures and on sampling combined with
 * a trace request in replay mode (nothing is simulated, so there is
 * nothing to trace).
 */
ExperimentResult runCellSampled(const SweepPoint &pt);

/**
 * Reconstruct a result from an already-loaded plan (the serve daemon
 * and tests use this to skip the path resolution).  @p pt supplies
 * the cell identity; the plan must validate against it.
 */
ExperimentResult reconstructFromPlan(const SweepPoint &pt,
                                     const SamplePlan &plan);

/**
 * Audit one representative against its checkpoint: restore the
 * cluster's pause-point payload from @p set replay-verified (the
 * prefix is re-simulated and byte-compared, exactly like a
 * restore-from run), then simulate just that representative's
 * interval and require its recomputed delta to equal the plan's
 * stored delta.  fatal() on any divergence; returns the number of
 * payload bytes verified on success.  This is the audit path — the
 * speed path never simulates — and doubles as an end-to-end
 * determinism check of profile, plan, and checkpoint set.
 */
std::size_t auditRepresentative(const SweepPoint &pt,
                                const SamplePlan &plan,
                                const CkptSet &set,
                                std::size_t cluster_idx);

} // namespace slipsim

#endif // SLIPSIM_SAMPLE_SAMPLED_RUN_HH
