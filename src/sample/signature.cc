/**
 * @file
 * Interval-signature extraction and normalization.
 */

#include "sample/signature.hh"

#include <cmath>

namespace slipsim
{

std::vector<std::string>
signatureFeatureNames(int num_cmps)
{
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(num_cmps) * 4 + 3);
    for (int n = 0; n < num_cmps; ++n) {
        std::string node = "node" + std::to_string(n);
        names.push_back(node + ".l2Misses");
        names.push_back(node + ".dirRequests");
        names.push_back(node + ".siSweeps");
        names.push_back(node + ".aReadMisses");
    }
    names.push_back("run.recoveries");
    names.push_back("run.events");
    names.push_back("run.cycles");
    return names;
}

std::vector<double>
signatureVector(const StatsSnapshot &delta, int num_cmps)
{
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(num_cmps) * 4 + 3);
    for (int n = 0; n < num_cmps; ++n) {
        std::string l2 = "node" + std::to_string(n) + ".l2";
        std::string dir = "node" + std::to_string(n) + ".dir";
        v.push_back(static_cast<double>(
            delta.counter(l2 + ".readMisses") +
            delta.counter(l2 + ".exclMisses")));
        v.push_back(static_cast<double>(
            delta.counter(dir + ".requests")));
        v.push_back(static_cast<double>(
            delta.counter(l2 + ".si.invalidated") +
            delta.counter(l2 + ".si.downgraded")));
        v.push_back(static_cast<double>(
            delta.counter(l2 + ".aReadMisses")));
    }
    v.push_back(static_cast<double>(delta.counter("run.recoveries")));
    v.push_back(static_cast<double>(delta.counter("run.events")));
    v.push_back(static_cast<double>(delta.counter("run.cycles")));
    return v;
}

void
normalizeSignatures(std::vector<std::vector<double>> &sigs)
{
    if (sigs.empty())
        return;
    const std::size_t dim = sigs[0].size();
    std::vector<double> maxs(dim, 0);
    for (const auto &s : sigs) {
        for (std::size_t d = 0; d < dim; ++d) {
            double a = std::fabs(s[d]);
            if (a > maxs[d])
                maxs[d] = a;
        }
    }
    for (auto &s : sigs) {
        for (std::size_t d = 0; d < dim; ++d) {
            if (maxs[d] != 0)
                s[d] /= maxs[d];
        }
    }
}

} // namespace slipsim
