/**
 * @file
 * Sample plans: the on-disk product of a `sample=profile` pass and
 * the sole input of a `sample=replay` reconstruction (DESIGN.md §14).
 *
 * A plan stores, per k-means cluster, the representative interval's
 * FULL delta snapshot (not just its signature) plus its weight, so a
 * replay needs no simulation at all: the full-run stats are
 * reconstructed as the weight-blended sum of representative deltas.
 *
 * Deltas are stored COLUMNAR: the sorted union of counter paths
 * appears once per plan (statPaths) and each cluster carries a bare
 * numeric array parallel to it.  Plan parse is the replay hot path —
 * at the cluster counts that hit the accuracy target, per-cluster
 * keyed objects made JSON parsing ~85% of replay time and sank the
 * speedup; columnar counters cut both the file size and the token
 * count by the cluster count.  The handful of non-counter entries
 * (gauges, histograms) stay keyed per cluster.
 *
 * It also stores everything reconstruction needs to rebuild the
 * figure fields (task -> processor prefixes) and everything
 * validation needs to fail closed (producing revision, canonical
 * base config, engine, interval length, cluster request).
 *
 * Serialized as deterministic JSON ("slipsim-sample-plan-v1"): two
 * profiles of the same cell on any host/jobs/sim-jobs produce
 * byte-identical plan files — unit-tested, like every other artifact
 * in this repo.
 */

#ifndef SLIPSIM_SAMPLE_PLAN_HH
#define SLIPSIM_SAMPLE_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats_registry.hh"
#include "sim/types.hh"

namespace slipsim
{

struct SampleCluster
{
    /** Interval index of the representative (0-based). */
    std::uint64_t repIndex = 0;
    /** Pause tick at which the representative interval began. */
    Tick startTick = 0;
    /** Member count (the cluster's weight; weights sum to
     *  numIntervals across the plan). */
    std::uint64_t members = 0;
    /** Counter values of the representative's interval delta
     *  (StatsSnapshot::deltaFrom semantics), parallel to
     *  SamplePlan::statPaths; a counter absent from the delta stores
     *  0 (absent and zero are the same interval behaviour). */
    std::vector<std::uint64_t> counts;
    /** The delta's non-counter entries (gauges, histograms), keyed.
     *  Never holds a counter and never overlaps statPaths. */
    StatsSnapshot other;
};

struct SamplePlan
{
    std::string gitRev;
    /** renderBaseCell() of the profiled cell: the full-fidelity
     *  simulation this plan describes. */
    std::string baseConfig;
    /** "sequential" or "parallel" — interval pause points are
     *  engine-specific, so a plan only serves its own engine. */
    std::string engine;
    /** Interval length K in ticks. */
    Tick interval = 0;
    /** sample-clusters= the profile ran with. */
    int clustersRequested = 0;
    /** Total profiling intervals (weights sum to this). */
    std::uint64_t numIntervals = 0;
    /** Completion tick of the profiled run. */
    Tick endTick = 0;
    /** Workload verification outcome of the profiled run. */
    bool verified = false;
    /** Index into clusters[] of the cluster holding the LAST interval
     *  (supplies gauges and histogram maxima at reconstruction). */
    std::uint64_t finalCluster = 0;
    /** Task count and per-task processor stat prefixes ("node0.proc1")
     *  for the R stream and (slipstream only) the A stream — what
     *  CellRun::finish() queries to build the Figure 6 breakdown. */
    std::vector<std::string> rProcs;
    std::vector<std::string> aProcs;
    /** Strictly ascending union of counter paths across cluster
     *  deltas; each cluster's counts array is parallel to this. */
    std::vector<std::string> statPaths;
    /** Non-empty clusters, ascending by repIndex. */
    std::vector<SampleCluster> clusters;
};

/** Sorted union of counter paths across @p deltas (the plan's
 *  statPaths). */
std::vector<std::string>
counterPathUnion(const std::vector<const StatsSnapshot *> &deltas);

/** Split @p delta into columnar form against @p statPaths: counter
 *  values in statPaths order (absent -> 0) into @p counts, the keyed
 *  non-counter remainder into @p other.  Fatal if the delta holds a
 *  counter path missing from @p statPaths. */
void splitDeltaColumns(const StatsSnapshot &delta,
                       const std::vector<std::string> &statPaths,
                       std::vector<std::uint64_t> &counts,
                       StatsSnapshot &other);

/** Whether @p delta matches cluster @p c of @p plan: counters compare
 *  as a union with absent = 0, non-counter entries exactly. */
bool clusterMatchesDelta(const SamplePlan &plan,
                         const SampleCluster &c,
                         const StatsSnapshot &delta);

/** Serialize to deterministic "slipsim-sample-plan-v1" JSON. */
std::string planToJson(const SamplePlan &plan);

/** Parse + validate plan JSON; fatal() on any schema violation,
 *  including weights that do not sum to numIntervals. */
SamplePlan planFromJson(const std::string &text, const std::string &what);

/** Write @p plan to @p path (fatal on I/O error). */
void writeSamplePlan(const std::string &path, const SamplePlan &plan);

/** Read + validate a plan file (fatal on open or schema error). */
SamplePlan readSamplePlan(const std::string &path);

} // namespace slipsim

#endif // SLIPSIM_SAMPLE_PLAN_HH
