/**
 * @file
 * Sample-plan JSON serialization (deterministic) and fail-closed
 * parsing.
 */

#include "sample/plan.hh"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace slipsim
{

namespace
{

constexpr const char *planSchema = "slipsim-sample-plan-v1";

std::vector<std::string>
stringArray(const JsonValue &v, const char *key)
{
    const JsonValue &arr = v.at(key);
    if (!arr.isArray())
        fatal("sample plan: \"%s\" is not an array", key);
    std::vector<std::string> out;
    out.reserve(arr.arr.size());
    for (const JsonValue &e : arr.arr) {
        if (!e.isString())
            fatal("sample plan: \"%s\" holds a non-string", key);
        out.push_back(e.str);
    }
    return out;
}

std::uint64_t
u64Field(const JsonValue &v, const char *key)
{
    const JsonValue &f = v.at(key);
    if (!f.isNumber() || f.number < 0)
        fatal("sample plan: \"%s\" is not a non-negative number", key);
    return static_cast<std::uint64_t>(f.number);
}

std::string
strField(const JsonValue &v, const char *key)
{
    const JsonValue &f = v.at(key);
    if (!f.isString())
        fatal("sample plan: \"%s\" is not a string", key);
    return f.str;
}

} // namespace

std::string
planToJson(const SamplePlan &plan)
{
    std::ostringstream os;
    os << "{\n\"schema\": \"" << planSchema << "\",\n"
       << "\"git_rev\": \"" << jsonEscape(plan.gitRev) << "\",\n"
       << "\"base_config\": \"" << jsonEscape(plan.baseConfig)
       << "\",\n"
       << "\"engine\": \"" << jsonEscape(plan.engine) << "\",\n"
       << "\"interval\": " << plan.interval << ",\n"
       << "\"clusters_requested\": " << plan.clustersRequested << ",\n"
       << "\"num_intervals\": " << plan.numIntervals << ",\n"
       << "\"end_tick\": " << plan.endTick << ",\n"
       << "\"verified\": " << (plan.verified ? "true" : "false")
       << ",\n"
       << "\"final_cluster\": " << plan.finalCluster << ",\n";
    auto str_arr = [&](const char *key,
                       const std::vector<std::string> &v) {
        os << "\"" << key << "\": [";
        for (std::size_t i = 0; i < v.size(); ++i)
            os << (i ? ", " : "") << "\"" << jsonEscape(v[i]) << "\"";
        os << "],\n";
    };
    str_arr("r_procs", plan.rProcs);
    str_arr("a_procs", plan.aProcs);
    os << "\"stat_paths\": [";
    for (std::size_t i = 0; i < plan.statPaths.size(); ++i) {
        os << (i ? ",\n" : "\n") << "\"" << jsonEscape(plan.statPaths[i])
           << "\"";
    }
    os << "\n],\n\"clusters\": [";
    for (std::size_t i = 0; i < plan.clusters.size(); ++i) {
        const SampleCluster &c = plan.clusters[i];
        os << (i ? ",\n" : "\n") << "{\"rep\": " << c.repIndex
           << ", \"start_tick\": " << c.startTick
           << ", \"members\": " << c.members << ", \"counts\": [";
        for (std::size_t j = 0; j < c.counts.size(); ++j)
            os << (j ? "," : "") << c.counts[j];
        os << "], \"other\": ";
        c.other.writeJson(os);
        os << "}";
    }
    os << "\n]\n}\n";
    return std::move(os).str();
}

SamplePlan
planFromJson(const std::string &text, const std::string &what)
{
    JsonValue doc;
    try {
        doc = parseJson(text);
    } catch (const std::exception &e) {
        fatal("sample plan '%s': %s", what.c_str(), e.what());
    }
    if (!doc.isObject())
        fatal("sample plan '%s' is not a JSON object", what.c_str());
    if (strField(doc, "schema") != planSchema) {
        fatal("sample plan '%s': schema tag is not \"%s\"",
              what.c_str(), planSchema);
    }

    SamplePlan plan;
    plan.gitRev = strField(doc, "git_rev");
    plan.baseConfig = strField(doc, "base_config");
    plan.engine = strField(doc, "engine");
    if (plan.engine != "sequential" && plan.engine != "parallel") {
        fatal("sample plan '%s': unknown engine \"%s\"", what.c_str(),
              plan.engine.c_str());
    }
    plan.interval = static_cast<Tick>(u64Field(doc, "interval"));
    if (plan.interval < 1)
        fatal("sample plan '%s': interval must be >= 1", what.c_str());
    plan.clustersRequested =
        static_cast<int>(u64Field(doc, "clusters_requested"));
    plan.numIntervals = u64Field(doc, "num_intervals");
    if (plan.numIntervals < 1)
        fatal("sample plan '%s': no intervals", what.c_str());
    plan.endTick = static_cast<Tick>(u64Field(doc, "end_tick"));
    const JsonValue &verified = doc.at("verified");
    if (!verified.isBool())
        fatal("sample plan '%s': verified is not boolean",
              what.c_str());
    plan.verified = verified.boolean;
    plan.finalCluster = u64Field(doc, "final_cluster");
    plan.rProcs = stringArray(doc, "r_procs");
    plan.aProcs = stringArray(doc, "a_procs");
    if (plan.rProcs.empty())
        fatal("sample plan '%s': r_procs is empty", what.c_str());
    if (!plan.aProcs.empty() &&
        plan.aProcs.size() != plan.rProcs.size()) {
        fatal("sample plan '%s': a_procs/r_procs length mismatch",
              what.c_str());
    }
    plan.statPaths = stringArray(doc, "stat_paths");
    if (plan.statPaths.empty())
        fatal("sample plan '%s': stat_paths is empty", what.c_str());
    for (std::size_t i = 1; i < plan.statPaths.size(); ++i) {
        if (!(plan.statPaths[i - 1] < plan.statPaths[i])) {
            fatal("sample plan '%s': stat_paths not strictly "
                  "ascending at index %zu",
                  what.c_str(), i);
        }
    }

    const JsonValue &clusters = doc.at("clusters");
    if (!clusters.isArray() || clusters.arr.empty())
        fatal("sample plan '%s': clusters missing or empty",
              what.c_str());
    std::uint64_t total_members = 0;
    std::uint64_t prev_rep = 0;
    for (std::size_t i = 0; i < clusters.arr.size(); ++i) {
        const JsonValue &cj = clusters.arr[i];
        if (!cj.isObject())
            fatal("sample plan '%s': cluster %zu is not an object",
                  what.c_str(), i);
        SampleCluster c;
        c.repIndex = u64Field(cj, "rep");
        c.startTick = static_cast<Tick>(u64Field(cj, "start_tick"));
        c.members = u64Field(cj, "members");
        if (c.members < 1) {
            fatal("sample plan '%s': cluster %zu has zero members",
                  what.c_str(), i);
        }
        if (c.repIndex >= plan.numIntervals) {
            fatal("sample plan '%s': cluster %zu representative %llu "
                  "out of range (%llu intervals)",
                  what.c_str(), i,
                  static_cast<unsigned long long>(c.repIndex),
                  static_cast<unsigned long long>(plan.numIntervals));
        }
        if (i > 0 && c.repIndex <= prev_rep) {
            fatal("sample plan '%s': clusters not ascending by "
                  "representative index",
                  what.c_str());
        }
        prev_rep = c.repIndex;
        const JsonValue &counts = cj.at("counts");
        if (!counts.isArray() ||
            counts.arr.size() != plan.statPaths.size()) {
            fatal("sample plan '%s': cluster %zu counts length does "
                  "not match stat_paths (%zu vs %zu)",
                  what.c_str(), i,
                  counts.isArray() ? counts.arr.size() : 0,
                  plan.statPaths.size());
        }
        c.counts.reserve(counts.arr.size());
        for (const JsonValue &e : counts.arr) {
            if (!e.isNumber() || e.number < 0) {
                fatal("sample plan '%s': cluster %zu counts holds a "
                      "non-numeric or negative entry",
                      what.c_str(), i);
            }
            c.counts.push_back(static_cast<std::uint64_t>(e.number));
        }
        c.other = StatsSnapshot::fromJson(cj.at("other"));
        for (const auto &[path, v] : c.other.all()) {
            if (v.kind == StatsSnapshot::Kind::Counter) {
                fatal("sample plan '%s': cluster %zu \"other\" holds "
                      "counter '%s' (counters are columnar)",
                      what.c_str(), i, path.c_str());
            }
            if (std::binary_search(plan.statPaths.begin(),
                                   plan.statPaths.end(), path)) {
                fatal("sample plan '%s': cluster %zu path '%s' is "
                      "both columnar and keyed",
                      what.c_str(), i, path.c_str());
            }
        }
        total_members += c.members;
        plan.clusters.push_back(std::move(c));
    }
    if (total_members != plan.numIntervals) {
        fatal("sample plan '%s': cluster weights sum to %llu but the "
              "plan covers %llu intervals",
              what.c_str(),
              static_cast<unsigned long long>(total_members),
              static_cast<unsigned long long>(plan.numIntervals));
    }
    if (plan.finalCluster >= plan.clusters.size()) {
        fatal("sample plan '%s': final_cluster %llu out of range "
              "(%zu clusters)",
              what.c_str(),
              static_cast<unsigned long long>(plan.finalCluster),
              plan.clusters.size());
    }
    return plan;
}

std::vector<std::string>
counterPathUnion(const std::vector<const StatsSnapshot *> &deltas)
{
    std::set<std::string> paths;
    for (const StatsSnapshot *d : deltas) {
        for (const auto &[path, v] : d->all()) {
            if (v.kind == StatsSnapshot::Kind::Counter)
                paths.insert(path);
        }
    }
    return {paths.begin(), paths.end()};
}

void
splitDeltaColumns(const StatsSnapshot &delta,
                  const std::vector<std::string> &statPaths,
                  std::vector<std::uint64_t> &counts,
                  StatsSnapshot &other)
{
    counts.assign(statPaths.size(), 0);
    for (const auto &[path, v] : delta.all()) {
        if (v.kind != StatsSnapshot::Kind::Counter) {
            switch (v.kind) {
              case StatsSnapshot::Kind::Gauge:
                other.setGauge(path, v.gauge);
                break;
              case StatsSnapshot::Kind::Hist:
                other.setHistogram(path, v.hist);
                break;
              default:
                break;
            }
            continue;
        }
        auto it = std::lower_bound(statPaths.begin(), statPaths.end(),
                                   path);
        if (it == statPaths.end() || *it != path) {
            fatal("sample plan: counter '%s' missing from the stat "
                  "path union",
                  path.c_str());
        }
        counts[static_cast<std::size_t>(it - statPaths.begin())] =
            v.count;
    }
}

bool
clusterMatchesDelta(const SamplePlan &plan, const SampleCluster &c,
                    const StatsSnapshot &delta)
{
    // Counters merge-walk: delta's counter paths and plan.statPaths
    // are both ascending, so one cursor suffices.  A path only one
    // side knows must be zero on the side that has it — a zero-valued
    // counter and an unregistered one describe the same interval.
    const std::size_t n = plan.statPaths.size();
    std::size_t i = 0;
    std::size_t other_matched = 0;
    for (const auto &[path, v] : delta.all()) {
        if (v.kind == StatsSnapshot::Kind::Counter) {
            while (i < n && plan.statPaths[i] < path) {
                if (c.counts[i] != 0)
                    return false;
                ++i;
            }
            std::uint64_t want = 0;
            if (i < n && plan.statPaths[i] == path)
                want = c.counts[i++];
            if (v.count != want)
                return false;
        } else {
            const auto &om = c.other.all();
            auto it = om.find(path);
            if (it == om.end() || !(it->second == v))
                return false;
            ++other_matched;
        }
    }
    while (i < n) {
        if (c.counts[i++] != 0)
            return false;
    }
    // Every "other" entry must have been claimed by a delta entry —
    // extras in the plan are a mismatch too.
    return other_matched == c.other.size();
}

void
writeSamplePlan(const std::string &path, const SamplePlan &plan)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        fatal("cannot open sample plan '%s' for writing", path.c_str());
    f << planToJson(plan);
    f.flush();
    if (!f)
        fatal("short write to sample plan '%s'", path.c_str());
}

SamplePlan
readSamplePlan(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        fatal("cannot open sample plan '%s' (run the cell with "
              "sample=profile first)",
              path.c_str());
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    return planFromJson(ss.str(), path);
}

} // namespace slipsim
