/**
 * @file
 * Deterministic k-means implementation.
 */

#include "sample/kmeans.hh"

#include "sim/logging.hh"

namespace slipsim
{

namespace
{

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double x = a[i] - b[i];
        d += x * x;
    }
    return d;
}

} // namespace

KMeansResult
kmeansDeterministic(const std::vector<std::vector<double>> &points,
                    std::size_t k)
{
    const std::size_t n = points.size();
    if (n == 0)
        fatal("kmeans: no points");
    if (k < 1)
        fatal("kmeans: k must be >= 1");
    const std::size_t dim = points[0].size();
    for (const auto &p : points) {
        if (p.size() != dim)
            fatal("kmeans: ragged point dimensions (%zu vs %zu)",
                  p.size(), dim);
    }
    if (k > n)
        k = n;

    KMeansResult r;
    r.centroids.reserve(k);

    // Farthest-point seeding from point 0.  A strict `>` comparison
    // keeps the lowest index on ties; once every remaining point
    // coincides with a chosen center (best == 0) further seeds would
    // duplicate it, so seeding stops early and those clusters stay
    // empty — the all-identical degenerate case.
    std::vector<double> min_d(n);
    r.centroids.push_back(points[0]);
    for (std::size_t i = 0; i < n; ++i)
        min_d[i] = sqDist(points[i], r.centroids[0]);
    while (r.centroids.size() < k) {
        std::size_t far = 0;
        double best = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (min_d[i] > best) {
                best = min_d[i];
                far = i;
            }
        }
        if (best == 0)
            break;
        r.centroids.push_back(points[far]);
        for (std::size_t i = 0; i < n; ++i) {
            double d = sqDist(points[i], r.centroids.back());
            if (d < min_d[i])
                min_d[i] = d;
        }
    }
    const std::size_t kk = r.centroids.size();

    // Lloyd rounds: assign (ties -> lowest cluster index), recompute
    // centroids as member means (an empty cluster keeps its centroid),
    // stop early only on an exactly unchanged assignment.
    r.assign.assign(n, 0);
    for (int iter = 0; iter < kmeansIterations; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            int bestc = 0;
            double bestd = sqDist(points[i], r.centroids[0]);
            for (std::size_t c = 1; c < kk; ++c) {
                double d = sqDist(points[i], r.centroids[c]);
                if (d < bestd) {
                    bestd = d;
                    bestc = static_cast<int>(c);
                }
            }
            if (r.assign[i] != bestc) {
                r.assign[i] = bestc;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        std::vector<std::vector<double>> sums(
            kk, std::vector<double>(dim, 0));
        std::vector<std::uint64_t> counts(kk, 0);
        for (std::size_t i = 0; i < n; ++i) {
            std::size_t c = static_cast<std::size_t>(r.assign[i]);
            ++counts[c];
            for (std::size_t d = 0; d < dim; ++d)
                sums[c][d] += points[i][d];
        }
        for (std::size_t c = 0; c < kk; ++c) {
            if (counts[c] == 0)
                continue;
            for (std::size_t d = 0; d < dim; ++d) {
                r.centroids[c][d] =
                    sums[c][d] / static_cast<double>(counts[c]);
            }
        }
    }

    r.sizes.assign(kk, 0);
    r.representative.assign(kk, 0);
    std::vector<double> repd(kk, 0);
    std::vector<bool> seen(kk, false);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t c = static_cast<std::size_t>(r.assign[i]);
        ++r.sizes[c];
        double d = sqDist(points[i], r.centroids[c]);
        // Strict `<` keeps the lowest interval index on ties.
        if (!seen[c] || d < repd[c]) {
            seen[c] = true;
            repd[c] = d;
            r.representative[c] = i;
        }
    }
    return r;
}

} // namespace slipsim
