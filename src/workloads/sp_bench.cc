/**
 * @file
 * SP: NAS scalar-pentadiagonal-style ADI solver (Table 2: 16x16x16),
 * simplified to scalar tridiagonal line solves.
 *
 * Each iteration performs implicit sweeps along x, y, and z.  The x
 * and y sweeps are partitioned by z-planes (lines stay inside a
 * task's slab); the z sweep is partitioned by y, so every line
 * crosses all z-planes — the heavy all-task communication that limits
 * SP's scalability.  Line solves write disjoint elements in a fixed
 * order, so verification is bit-exact.
 */

#include <memory>
#include <vector>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

class SpWorkload : public Workload
{
  public:
    explicit
    SpWorkload(const Options &o)
        : n(static_cast<size_t>(
              o.getInt("n", o.getBool("paper", false) ? 16 : 12))),
          iters(static_cast<int>(o.getInt("iters", 2)))
    {}

    std::string name() const override { return "sp"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(n) + "^3, " + std::to_string(iters) +
               " ADI iterations";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        u.nz = u.ny = u.nx = n;
        u.base = rt.alloc().alloc(u.bytes(), Placement::Partitioned,
                                  rt.numTasks());
        bar = rt.makeBarrier();
        writeVec(rt.fmem(), u.base, initialU());
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        std::vector<double> line(n);
        Span zs = partition(n, ctx.tid(), ctx.numTasks());
        Span ys = partition(n, ctx.tid(), ctx.numTasks());

        for (int it = 0; it < iters; ++it) {
            // x-sweep: contiguous lines within my z-slab.
            for (size_t z = zs.lo; z < zs.hi; ++z) {
                for (size_t y = 0; y < n; ++y) {
                    co_await ctx.ldBuf(u.at(z, y, 0), line.data(),
                                       n * sizeof(double));
                    thomas(line);
                    co_await ctx.compute(8 * n);
                    co_await ctx.stBuf(u.at(z, y, 0), line.data(),
                                       n * sizeof(double));
                }
            }
            co_await ctx.barrier(bar);

            // y-sweep: strided lines within my z-slab.
            for (size_t z = zs.lo; z < zs.hi; ++z) {
                for (size_t x = 0; x < n; ++x) {
                    for (size_t y = 0; y < n; ++y)
                        line[y] = co_await ctx.ld<double>(u.at(z, y, x));
                    thomas(line);
                    co_await ctx.compute(8 * n);
                    for (size_t y = 0; y < n; ++y)
                        co_await ctx.st<double>(u.at(z, y, x), line[y]);
                }
            }
            co_await ctx.barrier(bar);

            // z-sweep: partitioned by y; lines cross every z-plane
            // (reads and writes into every other task's slab).
            for (size_t y = ys.lo; y < ys.hi; ++y) {
                for (size_t x = 0; x < n; ++x) {
                    for (size_t z = 0; z < n; ++z)
                        line[z] = co_await ctx.ld<double>(u.at(z, y, x));
                    thomas(line);
                    co_await ctx.compute(8 * n);
                    for (size_t z = 0; z < n; ++z)
                        co_await ctx.st<double>(u.at(z, y, x), line[z]);
                }
            }
            co_await ctx.barrier(bar);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        std::vector<double> hu = initialU();
        std::vector<double> line(n);
        auto at = [this](size_t z, size_t y, size_t x) {
            return (z * n + y) * n + x;
        };
        for (int it = 0; it < iters; ++it) {
            for (size_t z = 0; z < n; ++z) {
                for (size_t y = 0; y < n; ++y) {
                    for (size_t x = 0; x < n; ++x)
                        line[x] = hu[at(z, y, x)];
                    thomas(line);
                    for (size_t x = 0; x < n; ++x)
                        hu[at(z, y, x)] = line[x];
                }
            }
            for (size_t z = 0; z < n; ++z) {
                for (size_t x = 0; x < n; ++x) {
                    for (size_t y = 0; y < n; ++y)
                        line[y] = hu[at(z, y, x)];
                    thomas(line);
                    for (size_t y = 0; y < n; ++y)
                        hu[at(z, y, x)] = line[y];
                }
            }
            for (size_t y = 0; y < n; ++y) {
                for (size_t x = 0; x < n; ++x) {
                    for (size_t z = 0; z < n; ++z)
                        line[z] = hu[at(z, y, x)];
                    thomas(line);
                    for (size_t z = 0; z < n; ++z)
                        hu[at(z, y, x)] = line[z];
                }
            }
        }
        return maxAbsDiff(readVec(m, u.base, n * n * n), hu) == 0.0;
    }

  private:
    /** Thomas algorithm for (I - sigma*Dxx) with constant
     *  coefficients; solves in place. */
    static void
    thomas(std::vector<double> &d)
    {
        const size_t len = d.size();
        const double a = -0.25, b = 1.5, c = -0.25;
        static thread_local std::vector<double> cp, dp;
        cp.assign(len, 0.0);
        dp.assign(len, 0.0);
        cp[0] = c / b;
        dp[0] = d[0] / b;
        for (size_t i = 1; i < len; ++i) {
            double mdiv = b - a * cp[i - 1];
            cp[i] = c / mdiv;
            dp[i] = (d[i] - a * dp[i - 1]) / mdiv;
        }
        d[len - 1] = dp[len - 1];
        for (size_t i = len - 1; i-- > 0;)
            d[i] = dp[i] - cp[i] * d[i + 1];
    }

    std::vector<double>
    initialU() const
    {
        std::vector<double> v(n * n * n);
        for (size_t i = 0; i < v.size(); ++i)
            v[i] = static_cast<double>((i * 31 % 101)) / 101.0;
        return v;
    }

    size_t n;
    int iters;
    SharedGrid3D u;
    int bar = 0;
};

WorkloadRegistrar regSp("sp", [](const Options &o) {
    return std::make_unique<SpWorkload>(o);
});

} // namespace
} // namespace slipsim
