/**
 * @file
 * Water-SP: spatial-decomposition molecular dynamics
 * (Table 2: 512 molecules).
 *
 * Molecules are statically binned into a 3-D cell grid; tasks own
 * z-slabs of cells and compute forces for their own molecules by
 * reading the 27 neighbouring cells (owner-computes, no locks) — the
 * neighbour-only communication that lets Water-SP keep scaling in
 * Figure 4.  Per-molecule accumulation order is fixed, so
 * verification is bit-exact.
 */

#include <cmath>
#include <memory>
#include <vector>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

class WaterSpWorkload : public Workload
{
  public:
    explicit
    WaterSpWorkload(const Options &o)
        : nmol(static_cast<size_t>(
              o.getInt("mol", o.getBool("paper", false) ? 512 : 64))),
          steps(static_cast<int>(o.getInt("steps", 2))),
          pairFlop(static_cast<Tick>(o.getInt("pairflop", 100)))
    {
        cells = 2;
        while (cells * cells * cells * 4 < nmol)
            ++cells;
    }

    std::string name() const override { return "water-sp"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(nmol) + " molecules, " +
               std::to_string(cells) + "^3 cells, " +
               std::to_string(steps) + " timesteps";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        const int nt = rt.numTasks();
        pos.base = rt.alloc().alloc(3 * nmol * sizeof(double),
                                    Placement::Partitioned, nt);
        vel.base = rt.alloc().alloc(3 * nmol * sizeof(double),
                                    Placement::Partitioned, nt);
        pos.n = vel.n = 3 * nmol;
        bar = rt.makeBarrier();
        writeVec(rt.fmem(), pos.base, initialPos());
        writeVec(rt.fmem(), vel.base,
                 std::vector<double>(3 * nmol, 0.0));
        buildBins();
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        // Own cells = a contiguous block of the flattened cell list
        // (keeps every task busy even when tasks > cells per axis);
        // own molecules are the ones binned into those cells.
        const size_t total_cells = cells * cells * cells;
        Span cs = partition(total_cells, ctx.tid(), ctx.numTasks());
        std::vector<size_t> mine;
        for (size_t c = cs.lo; c < cs.hi; ++c)
            for (size_t m : bins[c])
                mine.push_back(m);

        std::vector<double> force(3 * nmol, 0.0);

        for (int step = 0; step < steps; ++step) {
            // Predict own molecules.
            for (size_t i : mine) {
                for (int d = 0; d < 3; ++d) {
                    double p =
                        co_await ctx.ld<double>(pos.at(3 * i + d));
                    double v =
                        co_await ctx.ld<double>(vel.at(3 * i + d));
                    co_await ctx.st<double>(pos.at(3 * i + d),
                                            p + dt * v);
                    co_await ctx.compute(2);
                }
            }
            co_await ctx.barrier(bar);

            // Forces: for each of my molecules, visit neighbouring
            // cells (reads into other tasks' cells at block edges).
            for (size_t c = cs.lo; c < cs.hi; ++c) {
                size_t z = c / (cells * cells);
                size_t y = (c / cells) % cells;
                size_t x = c % cells;
                for (size_t i : bins[c]) {
                    double pi[3];
                    for (int d = 0; d < 3; ++d) {
                        pi[d] = co_await ctx.ld<double>(
                            pos.at(3 * i + d));
                    }
                    double f[3] = {0, 0, 0};
                    co_await accumulate(ctx, i, pi, z, y, x, f);
                    for (int d = 0; d < 3; ++d)
                        force[3 * i + d] = f[d];
                }
            }
            co_await ctx.barrier(bar);

            // Correct own molecules.
            for (size_t i : mine) {
                for (int d = 0; d < 3; ++d) {
                    double v =
                        co_await ctx.ld<double>(vel.at(3 * i + d));
                    co_await ctx.st<double>(vel.at(3 * i + d),
                                            v + dt * force[3 * i + d]);
                    co_await ctx.compute(2);
                }
            }
            co_await ctx.barrier(bar);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        std::vector<double> rp = initialPos();
        std::vector<double> rv(3 * nmol, 0.0);
        for (int step = 0; step < steps; ++step) {
            for (size_t i = 0; i < nmol; ++i)
                for (int d = 0; d < 3; ++d)
                    rp[3 * i + d] += dt * rv[3 * i + d];
            std::vector<double> rf(3 * nmol, 0.0);
            for (size_t z = 0; z < cells; ++z) {
                for (size_t y = 0; y < cells; ++y) {
                    for (size_t x = 0; x < cells; ++x) {
                        for (size_t i : bins[cellIdx(z, y, x)]) {
                            double f[3] = {0, 0, 0};
                            hostAccumulate(rp, i, z, y, x, f);
                            for (int d = 0; d < 3; ++d)
                                rf[3 * i + d] = f[d];
                        }
                    }
                }
            }
            for (size_t i = 0; i < nmol; ++i)
                for (int d = 0; d < 3; ++d)
                    rv[3 * i + d] += dt * rf[3 * i + d];
        }
        double dp = maxAbsDiff(readVec(m, pos.base, 3 * nmol), rp);
        double dv = maxAbsDiff(readVec(m, vel.base, 3 * nmol), rv);
        return dp == 0.0 && dv == 0.0;
    }

  private:
    Coro<void>
    accumulate(TaskContext &ctx, size_t i, const double *pi, size_t z,
               size_t y, size_t x, double *f)
    {
        for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    size_t nz = wrap(z, dz), ny = wrap(y, dy),
                           nx = wrap(x, dx);
                    for (size_t j : bins[cellIdx(nz, ny, nx)]) {
                        if (j == i)
                            continue;
                        double pj[3];
                        for (int d = 0; d < 3; ++d) {
                            pj[d] = co_await ctx.ld<double>(
                                pos.at(3 * j + d));
                        }
                        addForce(pi, pj, f);
                        co_await ctx.compute(pairFlop);
                    }
                }
            }
        }
    }

    void
    hostAccumulate(const std::vector<double> &rp, size_t i, size_t z,
                   size_t y, size_t x, double *f) const
    {
        for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    size_t nz = wrap(z, dz), ny = wrap(y, dy),
                           nx = wrap(x, dx);
                    for (size_t j : bins[cellIdx(nz, ny, nx)]) {
                        if (j == i)
                            continue;
                        addForce(&rp[3 * i], &rp[3 * j], f);
                    }
                }
            }
        }
    }

    static void
    addForce(const double *pi, const double *pj, double *f)
    {
        double dx = pi[0] - pj[0], dy = pi[1] - pj[1],
               dz = pi[2] - pj[2];
        double r2 = dx * dx + dy * dy + dz * dz + 0.1;
        double inv = 1.0 / (r2 * r2);
        f[0] += dx * inv;
        f[1] += dy * inv;
        f[2] += dz * inv;
    }

    size_t
    wrap(size_t v, int d) const
    {
        long c = static_cast<long>(cells);
        return static_cast<size_t>(
            (static_cast<long>(v) + d + c) % c);
    }

    size_t
    cellIdx(size_t z, size_t y, size_t x) const
    {
        return (z * cells + y) * cells + x;
    }

    std::vector<double>
    initialPos() const
    {
        std::vector<double> p(3 * nmol);
        size_t side = static_cast<size_t>(
            std::ceil(std::cbrt(static_cast<double>(nmol))));
        for (size_t i = 0; i < nmol; ++i) {
            p[3 * i] = 0.9 * static_cast<double>(i % side);
            p[3 * i + 1] = 0.9 * static_cast<double>((i / side) % side);
            p[3 * i + 2] = 0.9 * static_cast<double>(i / (side * side));
        }
        return p;
    }

    /** Static binning by initial position (no rebinning across the
     *  few simulated timesteps). */
    void
    buildBins()
    {
        bins.assign(cells * cells * cells, {});
        std::vector<double> p = initialPos();
        size_t side = static_cast<size_t>(
            std::ceil(std::cbrt(static_cast<double>(nmol))));
        double span = 0.9 * static_cast<double>(side) + 1e-9;
        for (size_t i = 0; i < nmol; ++i) {
            auto bin = [&](double v) {
                size_t b = static_cast<size_t>(
                    v / span * static_cast<double>(cells));
                return b >= cells ? cells - 1 : b;
            };
            size_t x = bin(p[3 * i]), y = bin(p[3 * i + 1]),
                   z = bin(p[3 * i + 2]);
            bins[cellIdx(z, y, x)].push_back(i);
        }
    }

    static constexpr double dt = 0.001;

    size_t nmol;
    int steps;
    Tick pairFlop;
    size_t cells;
    SharedVec pos, vel;
    std::vector<std::vector<size_t>> bins;
    int bar = 0;
};

WorkloadRegistrar regWaterSp("water-sp", [](const Options &o) {
    return std::make_unique<WaterSpWorkload>(o);
});

} // namespace
} // namespace slipsim
