/**
 * @file
 * FFT: Splash-2-style six-step 1-D complex FFT (Table 2: 64K points).
 *
 * The m points are viewed as an s x s matrix (s = sqrt(m)) with rows
 * block-partitioned.  Transpose phases read columns across every other
 * task's partition — the all-to-all communication that limits FFT's
 * scalability in Figure 4.  Row FFTs and twiddles are local.
 * Verification is bit-exact against a host run of the same algorithm.
 */

#include <cmath>
#include <memory>
#include <vector>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

using Cplx = std::pair<double, double>;

/** In-place iterative radix-2 FFT of @p a (length power of two). */
void
fftRow(std::vector<double> &re, std::vector<double> &im)
{
    const size_t len = re.size();
    // Bit reversal.
    for (size_t i = 1, j = 0; i < len; ++i) {
        size_t bit = len >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j) {
            std::swap(re[i], re[j]);
            std::swap(im[i], im[j]);
        }
    }
    for (size_t blk = 2; blk <= len; blk <<= 1) {
        double ang = -2.0 * M_PI / static_cast<double>(blk);
        double wr = std::cos(ang), wi = std::sin(ang);
        for (size_t i = 0; i < len; i += blk) {
            double cr = 1.0, ci = 0.0;
            for (size_t k = 0; k < blk / 2; ++k) {
                double ur = re[i + k], ui = im[i + k];
                double vr = re[i + k + blk / 2] * cr -
                            im[i + k + blk / 2] * ci;
                double vi = re[i + k + blk / 2] * ci +
                            im[i + k + blk / 2] * cr;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + blk / 2] = ur - vr;
                im[i + k + blk / 2] = ui - vi;
                double ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
    }
}

class FftWorkload : public Workload
{
  public:
    explicit
    FftWorkload(const Options &o)
    {
        size_t m = static_cast<size_t>(o.getInt(
            "m", o.getBool("paper", false) ? 65536 : 4096));
        s = 1;
        while (s * s < m)
            s <<= 1;
        if (s * s != m)
            fatal("fft: m (%zu) must be a power of 4", m);
    }

    std::string name() const override { return "fft"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(s * s) + " complex doubles (" +
               std::to_string(s) + "x" + std::to_string(s) + ")";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        // Complex matrix: interleaved re/im, row-major; two buffers.
        const size_t bytes = s * s * 2 * sizeof(double);
        a.base = rt.alloc().alloc(bytes, Placement::Partitioned,
                                  rt.numTasks());
        b.base = rt.alloc().alloc(bytes, Placement::Partitioned,
                                  rt.numTasks());
        a.rows = b.rows = s;
        a.cols = b.cols = 2 * s;  // 2 doubles per complex
        bar = rt.makeBarrier();
        writeVec(rt.fmem(), a.base, initial());
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        Span rows = partition(s, ctx.tid(), ctx.numTasks());

        co_await transpose(ctx, rows, a, b);
        co_await ctx.barrier(bar);
        co_await fftRows(ctx, rows, b, /*twiddle=*/true);
        co_await ctx.barrier(bar);
        co_await transpose(ctx, rows, b, a);
        co_await ctx.barrier(bar);
        co_await fftRows(ctx, rows, a, /*twiddle=*/false);
        co_await ctx.barrier(bar);
        co_await transpose(ctx, rows, a, b);
        co_await ctx.barrier(bar);
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        std::vector<double> va = initial();
        std::vector<double> vb(va.size(), 0.0);
        hostTranspose(va, vb);
        hostFftRows(vb, true);
        hostTranspose(vb, va);
        hostFftRows(va, false);
        hostTranspose(va, vb);
        return maxAbsDiff(readVec(m, b.base, vb.size()), vb) == 0.0;
    }

  private:
    /** dst[r][c] = src[c][r] for my rows r of dst. */
    Coro<void>
    transpose(TaskContext &ctx, Span rows, const SharedGrid2D &src,
              const SharedGrid2D &dst)
    {
        std::vector<double> rowbuf(2 * s);
        for (size_t r = rows.lo; r < rows.hi; ++r) {
            for (size_t c = 0; c < s; ++c) {
                // Element (c, r) of src: a strided remote read.
                double re = co_await ctx.ld<double>(src.at(c, 2 * r));
                double im =
                    co_await ctx.ld<double>(src.at(c, 2 * r + 1));
                rowbuf[2 * c] = re;
                rowbuf[2 * c + 1] = im;
                co_await ctx.compute(2);
            }
            co_await ctx.stBuf(dst.rowAddr(r), rowbuf.data(),
                               dst.rowBytes());
        }
    }

    /** FFT (and optional twiddle) of my rows, in place. */
    Coro<void>
    fftRows(TaskContext &ctx, Span rows, const SharedGrid2D &g,
            bool twiddle)
    {
        std::vector<double> buf(2 * s);
        std::vector<double> re(s), im(s);
        for (size_t r = rows.lo; r < rows.hi; ++r) {
            co_await ctx.ldBuf(g.rowAddr(r), buf.data(), g.rowBytes());
            for (size_t c = 0; c < s; ++c) {
                re[c] = buf[2 * c];
                im[c] = buf[2 * c + 1];
            }
            fftRow(re, im);
            if (twiddle)
                twiddleRow(re, im, r);
            for (size_t c = 0; c < s; ++c) {
                buf[2 * c] = re[c];
                buf[2 * c + 1] = im[c];
            }
            // ~5 n log n flops for the FFT.
            co_await ctx.compute(static_cast<Tick>(
                5 * s * std::lround(std::log2(s))));
            co_await ctx.stBuf(g.rowAddr(r), buf.data(), g.rowBytes());
        }
    }

    void
    twiddleRow(std::vector<double> &re, std::vector<double> &im,
               size_t r) const
    {
        for (size_t c = 0; c < s; ++c) {
            double ang = -2.0 * M_PI * static_cast<double>(r) *
                         static_cast<double>(c) /
                         static_cast<double>(s * s);
            double wr = std::cos(ang), wi = std::sin(ang);
            double nr = re[c] * wr - im[c] * wi;
            im[c] = re[c] * wi + im[c] * wr;
            re[c] = nr;
        }
    }

    std::vector<double>
    initial() const
    {
        std::vector<double> v(s * s * 2);
        for (size_t i = 0; i < s * s; ++i) {
            v[2 * i] = std::sin(0.001 * static_cast<double>(i));
            v[2 * i + 1] = std::cos(0.002 * static_cast<double>(i));
        }
        return v;
    }

    void
    hostTranspose(const std::vector<double> &src,
                  std::vector<double> &dst) const
    {
        for (size_t r = 0; r < s; ++r) {
            for (size_t c = 0; c < s; ++c) {
                dst[(r * s + c) * 2] = src[(c * s + r) * 2];
                dst[(r * s + c) * 2 + 1] = src[(c * s + r) * 2 + 1];
            }
        }
    }

    void
    hostFftRows(std::vector<double> &v, bool twiddle) const
    {
        std::vector<double> re(s), im(s);
        for (size_t r = 0; r < s; ++r) {
            for (size_t c = 0; c < s; ++c) {
                re[c] = v[(r * s + c) * 2];
                im[c] = v[(r * s + c) * 2 + 1];
            }
            fftRow(re, im);
            if (twiddle)
                twiddleRow(re, im, r);
            for (size_t c = 0; c < s; ++c) {
                v[(r * s + c) * 2] = re[c];
                v[(r * s + c) * 2 + 1] = im[c];
            }
        }
    }

    size_t s = 0;
    SharedGrid2D a, b;
    int bar = 0;
};

WorkloadRegistrar regFft("fft", [](const Options &o) {
    return std::make_unique<FftWorkload>(o);
});

} // namespace
} // namespace slipsim
