/**
 * @file
 * MG: NAS multigrid kernel (Table 2: 32x32x32).
 *
 * V-cycles on a 3-D grid: Jacobi smoothing (7-point stencil),
 * residual, restriction to a coarse grid, coarse smoothing,
 * prolongation + correction.  Grids are partitioned by z-planes with
 * barriers between operators; plane boundaries are the inter-task
 * communication.  Jacobi (two-array) smoothing is order-independent,
 * so verification is bit-exact.
 */

#include <memory>
#include <vector>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

class MgWorkload : public Workload
{
  public:
    explicit
    MgWorkload(const Options &o)
        : nf(static_cast<size_t>(
              o.getInt("n", o.getBool("paper", false) ? 32 : 16))),
          cycles(static_cast<int>(o.getInt("cycles", 2))),
          smooths(static_cast<int>(o.getInt("smooth", 2)))
    {
        if (nf % 2 != 0)
            fatal("mg: n must be even");
        nc = nf / 2;
    }

    std::string name() const override { return "mg"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(nf) + "^3, " + std::to_string(cycles) +
               " V-cycles";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        const int nt = rt.numTasks();
        auto g3 = [&](SharedGrid3D &g, size_t dim) {
            g.nz = g.ny = g.nx = dim;
            g.base = rt.alloc().alloc(g.bytes(),
                                      Placement::Partitioned, nt);
        };
        g3(u, nf);
        g3(tmp, nf);
        g3(res, nf);
        g3(uc, nc);
        g3(tmpc, nc);
        bar = rt.makeBarrier();

        writeVec(rt.fmem(), u.base, initialU());
        writeVec(rt.fmem(), tmp.base,
                 std::vector<double>(u.bytes() / 8, 0.0));
        writeVec(rt.fmem(), res.base,
                 std::vector<double>(res.bytes() / 8, 0.0));
        writeVec(rt.fmem(), uc.base,
                 std::vector<double>(uc.bytes() / 8, 0.0));
        writeVec(rt.fmem(), tmpc.base,
                 std::vector<double>(tmpc.bytes() / 8, 0.0));
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        for (int cyc = 0; cyc < cycles; ++cyc) {
            // Fine smoothing: u <-> tmp Jacobi pairs.
            for (int s = 0; s < smooths; ++s) {
                co_await smooth(ctx, u, tmp);
                co_await ctx.barrier(bar);
                co_await smooth(ctx, tmp, u);
                co_await ctx.barrier(bar);
            }
            // Residual and restriction to the coarse grid.
            co_await residual(ctx, u, res);
            co_await ctx.barrier(bar);
            co_await restrictTo(ctx, res, uc);
            co_await ctx.barrier(bar);
            // Coarse smoothing.
            for (int s = 0; s < smooths; ++s) {
                co_await smooth(ctx, uc, tmpc);
                co_await ctx.barrier(bar);
                co_await smooth(ctx, tmpc, uc);
                co_await ctx.barrier(bar);
            }
            // Prolongate and correct the fine grid.
            co_await prolongate(ctx, uc, u);
            co_await ctx.barrier(bar);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        const size_t N = nf * nf * nf;
        std::vector<double> hu = initialU(), htmp(N, 0.0), hres(N, 0.0);
        std::vector<double> huc(nc * nc * nc, 0.0),
            htmpc(nc * nc * nc, 0.0);

        for (int cyc = 0; cyc < cycles; ++cyc) {
            for (int s = 0; s < smooths; ++s) {
                hostSmooth(hu, htmp, nf);
                hostSmooth(htmp, hu, nf);
            }
            hostResidual(hu, hres, nf);
            hostRestrict(hres, huc);
            for (int s = 0; s < smooths; ++s) {
                hostSmooth(huc, htmpc, nc);
                hostSmooth(htmpc, huc, nc);
            }
            hostProlongate(huc, hu);
        }
        return maxAbsDiff(readVec(m, u.base, N), hu) == 0.0;
    }

  private:
    Span
    zPart(TaskContext &ctx, size_t dim) const
    {
        Span s = partition(dim - 2, ctx.tid(), ctx.numTasks());
        return Span{s.lo + 1, s.hi + 1};
    }

    /** dst = weighted Jacobi step of src (7-point). */
    Coro<void>
    smooth(TaskContext &ctx, const SharedGrid3D &src,
           const SharedGrid3D &dst)
    {
        Span zs = zPart(ctx, src.nz);
        for (size_t z = zs.lo; z < zs.hi; ++z) {
            for (size_t y = 1; y < src.ny - 1; ++y) {
                for (size_t x = 1; x < src.nx - 1; ++x) {
                    double c =
                        co_await ctx.ld<double>(src.at(z, y, x));
                    double zm =
                        co_await ctx.ld<double>(src.at(z - 1, y, x));
                    double zp =
                        co_await ctx.ld<double>(src.at(z + 1, y, x));
                    double ym =
                        co_await ctx.ld<double>(src.at(z, y - 1, x));
                    double yp =
                        co_await ctx.ld<double>(src.at(z, y + 1, x));
                    double xm =
                        co_await ctx.ld<double>(src.at(z, y, x - 1));
                    double xp =
                        co_await ctx.ld<double>(src.at(z, y, x + 1));
                    co_await ctx.st<double>(
                        dst.at(z, y, x),
                        0.5 * c +
                            (zm + zp + ym + yp + xm + xp) / 12.0);
                    co_await ctx.compute(8);
                }
            }
        }
    }

    Coro<void>
    residual(TaskContext &ctx, const SharedGrid3D &src,
             const SharedGrid3D &dst)
    {
        Span zs = zPart(ctx, src.nz);
        for (size_t z = zs.lo; z < zs.hi; ++z) {
            for (size_t y = 1; y < src.ny - 1; ++y) {
                for (size_t x = 1; x < src.nx - 1; ++x) {
                    double c =
                        co_await ctx.ld<double>(src.at(z, y, x));
                    double zm =
                        co_await ctx.ld<double>(src.at(z - 1, y, x));
                    double zp =
                        co_await ctx.ld<double>(src.at(z + 1, y, x));
                    double ym =
                        co_await ctx.ld<double>(src.at(z, y - 1, x));
                    double yp =
                        co_await ctx.ld<double>(src.at(z, y + 1, x));
                    double xm =
                        co_await ctx.ld<double>(src.at(z, y, x - 1));
                    double xp =
                        co_await ctx.ld<double>(src.at(z, y, x + 1));
                    co_await ctx.st<double>(
                        dst.at(z, y, x),
                        6.0 * c - (zm + zp + ym + yp + xm + xp));
                    co_await ctx.compute(8);
                }
            }
        }
    }

    /** Coarse(z,y,x) = average of the 8 fine children. */
    Coro<void>
    restrictTo(TaskContext &ctx, const SharedGrid3D &fine,
               const SharedGrid3D &coarse)
    {
        Span zs = zPart(ctx, coarse.nz);
        for (size_t z = zs.lo; z < zs.hi; ++z) {
            for (size_t y = 1; y < coarse.ny - 1; ++y) {
                for (size_t x = 1; x < coarse.nx - 1; ++x) {
                    double acc = 0.0;
                    for (int dz = 0; dz < 2; ++dz) {
                        for (int dy = 0; dy < 2; ++dy) {
                            for (int dx = 0; dx < 2; ++dx) {
                                acc += co_await ctx.ld<double>(
                                    fine.at(2 * z + dz, 2 * y + dy,
                                            2 * x + dx));
                            }
                        }
                    }
                    co_await ctx.st<double>(coarse.at(z, y, x),
                                            acc / 8.0);
                    co_await ctx.compute(9);
                }
            }
        }
    }

    /** Fine += injected coarse correction. */
    Coro<void>
    prolongate(TaskContext &ctx, const SharedGrid3D &coarse,
               const SharedGrid3D &fine)
    {
        Span zs = zPart(ctx, coarse.nz);
        for (size_t z = zs.lo; z < zs.hi; ++z) {
            for (size_t y = 1; y < coarse.ny - 1; ++y) {
                for (size_t x = 1; x < coarse.nx - 1; ++x) {
                    double c =
                        co_await ctx.ld<double>(coarse.at(z, y, x));
                    for (int dz = 0; dz < 2; ++dz) {
                        for (int dy = 0; dy < 2; ++dy) {
                            for (int dx = 0; dx < 2; ++dx) {
                                Addr a = fine.at(2 * z + dz,
                                                 2 * y + dy,
                                                 2 * x + dx);
                                double f =
                                    co_await ctx.ld<double>(a);
                                co_await ctx.st<double>(
                                    a, f + 0.25 * c);
                            }
                        }
                    }
                    co_await ctx.compute(16);
                }
            }
        }
    }

    // --- host reference ----------------------------------------------------

    static void
    hostSmooth(const std::vector<double> &src, std::vector<double> &dst,
               size_t n)
    {
        auto at = [n](size_t z, size_t y, size_t x) {
            return (z * n + y) * n + x;
        };
        for (size_t z = 1; z < n - 1; ++z) {
            for (size_t y = 1; y < n - 1; ++y) {
                for (size_t x = 1; x < n - 1; ++x) {
                    dst[at(z, y, x)] = 0.5 * src[at(z, y, x)] +
                        (src[at(z - 1, y, x)] + src[at(z + 1, y, x)] +
                         src[at(z, y - 1, x)] + src[at(z, y + 1, x)] +
                         src[at(z, y, x - 1)] + src[at(z, y, x + 1)]) /
                            12.0;
                }
            }
        }
    }

    static void
    hostResidual(const std::vector<double> &src,
                 std::vector<double> &dst, size_t n)
    {
        auto at = [n](size_t z, size_t y, size_t x) {
            return (z * n + y) * n + x;
        };
        for (size_t z = 1; z < n - 1; ++z) {
            for (size_t y = 1; y < n - 1; ++y) {
                for (size_t x = 1; x < n - 1; ++x) {
                    dst[at(z, y, x)] = 6.0 * src[at(z, y, x)] -
                        (src[at(z - 1, y, x)] + src[at(z + 1, y, x)] +
                         src[at(z, y - 1, x)] + src[at(z, y + 1, x)] +
                         src[at(z, y, x - 1)] + src[at(z, y, x + 1)]);
                }
            }
        }
    }

    void
    hostRestrict(const std::vector<double> &fine,
                 std::vector<double> &coarse) const
    {
        auto atF = [this](size_t z, size_t y, size_t x) {
            return (z * nf + y) * nf + x;
        };
        auto atC = [this](size_t z, size_t y, size_t x) {
            return (z * nc + y) * nc + x;
        };
        for (size_t z = 1; z < nc - 1; ++z) {
            for (size_t y = 1; y < nc - 1; ++y) {
                for (size_t x = 1; x < nc - 1; ++x) {
                    double acc = 0.0;
                    for (int dz = 0; dz < 2; ++dz)
                        for (int dy = 0; dy < 2; ++dy)
                            for (int dx = 0; dx < 2; ++dx)
                                acc += fine[atF(2 * z + dz, 2 * y + dy,
                                                2 * x + dx)];
                    coarse[atC(z, y, x)] = acc / 8.0;
                }
            }
        }
    }

    void
    hostProlongate(const std::vector<double> &coarse,
                   std::vector<double> &fine) const
    {
        auto atF = [this](size_t z, size_t y, size_t x) {
            return (z * nf + y) * nf + x;
        };
        auto atC = [this](size_t z, size_t y, size_t x) {
            return (z * nc + y) * nc + x;
        };
        for (size_t z = 1; z < nc - 1; ++z) {
            for (size_t y = 1; y < nc - 1; ++y) {
                for (size_t x = 1; x < nc - 1; ++x) {
                    double c = coarse[atC(z, y, x)];
                    for (int dz = 0; dz < 2; ++dz)
                        for (int dy = 0; dy < 2; ++dy)
                            for (int dx = 0; dx < 2; ++dx)
                                fine[atF(2 * z + dz, 2 * y + dy,
                                         2 * x + dx)] += 0.25 * c;
                }
            }
        }
    }

    std::vector<double>
    initialU() const
    {
        std::vector<double> v(nf * nf * nf);
        for (size_t i = 0; i < v.size(); ++i)
            v[i] = (i % 13 == 0) ? 1.0 : ((i % 7 == 0) ? -1.0 : 0.0);
        return v;
    }

    size_t nf, nc;
    int cycles;
    int smooths;
    SharedGrid3D u, tmp, res, uc, tmpc;
    int bar = 0;
};

WorkloadRegistrar regMg("mg", [](const Options &o) {
    return std::make_unique<MgWorkload>(o);
});

} // namespace
} // namespace slipsim
