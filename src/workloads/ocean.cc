/**
 * @file
 * Ocean: simplified Splash-2 Ocean (Table 2: 258x258).
 *
 * Each timestep performs red-black relaxation passes on the stream
 * function, a Laplacian update of the vorticity grid, and a global
 * error reduction under a lock — the reduction-variable pattern the
 * paper calls out.  Rows are block-partitioned; barriers separate
 * phases.  Relaxation and stencils verify bit-exactly; the reduction
 * (max) is order-independent, so the whole workload verifies exactly.
 */

#include <cmath>
#include <memory>
#include <vector>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

class OceanWorkload : public Workload
{
  public:
    explicit
    OceanWorkload(const Options &o)
        : n(static_cast<size_t>(
              o.getInt("n", o.getBool("paper", false) ? 258 : 66))),
          steps(static_cast<int>(o.getInt("steps", 2))),
          relaxPasses(static_cast<int>(o.getInt("relax", 2)))
    {}

    std::string name() const override { return "ocean"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(n) + "x" + std::to_string(n) + ", " +
               std::to_string(steps) + " timesteps";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        psi.rows = psi.cols = q.rows = q.cols = n;
        psi.base = rt.alloc().alloc(psi.bytes(),
                                    Placement::Partitioned,
                                    rt.numTasks());
        q.base = rt.alloc().alloc(q.bytes(), Placement::Partitioned,
                                  rt.numTasks());
        err = rt.alloc().alloc(lineBytes, Placement::Fixed, 1, 0);
        errLock = rt.makeLock(0);
        bar = rt.makeBarrier();

        writeVec(rt.fmem(), psi.base, initialPsi());
        writeVec(rt.fmem(), q.base,
                 std::vector<double>(n * n, 0.0));
        rt.fmem().write<double>(err, 0.0);
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        Span rows = partition(n - 2, ctx.tid(), ctx.numTasks());
        const size_t rlo = rows.lo + 1, rhi = rows.hi + 1;

        for (int step = 0; step < steps; ++step) {
            // Phase A: red-black relaxation of psi toward q.
            for (int pass = 0; pass < relaxPasses; ++pass) {
                for (int color = 0; color < 2; ++color) {
                    for (size_t r = rlo; r < rhi; ++r) {
                        size_t c0 = 1 + ((r + 1 + color) & 1);
                        for (size_t c = c0; c < n - 1; c += 2) {
                            double up = co_await ctx.ld<double>(
                                psi.at(r - 1, c));
                            double dn = co_await ctx.ld<double>(
                                psi.at(r + 1, c));
                            double lf = co_await ctx.ld<double>(
                                psi.at(r, c - 1));
                            double rg = co_await ctx.ld<double>(
                                psi.at(r, c + 1));
                            double rhs =
                                co_await ctx.ld<double>(q.at(r, c));
                            co_await ctx.st<double>(
                                psi.at(r, c),
                                0.25 * (up + dn + lf + rg - rhs));
                            co_await ctx.compute(5);
                        }
                    }
                    co_await ctx.barrier(bar);
                }
            }

            // Phase B: vorticity update q = laplacian(psi) * dt.
            for (size_t r = rlo; r < rhi; ++r) {
                for (size_t c = 1; c < n - 1; ++c) {
                    double up =
                        co_await ctx.ld<double>(psi.at(r - 1, c));
                    double dn =
                        co_await ctx.ld<double>(psi.at(r + 1, c));
                    double lf =
                        co_await ctx.ld<double>(psi.at(r, c - 1));
                    double rg =
                        co_await ctx.ld<double>(psi.at(r, c + 1));
                    double ce = co_await ctx.ld<double>(psi.at(r, c));
                    co_await ctx.st<double>(
                        q.at(r, c),
                        0.1 * (up + dn + lf + rg - 4.0 * ce));
                    co_await ctx.compute(6);
                }
            }
            co_await ctx.barrier(bar);

            // Phase C: global error reduction (max |q|) under a lock.
            double local = 0.0;
            for (size_t r = rlo; r < rhi; ++r) {
                for (size_t c = 1; c < n - 1; ++c) {
                    double v = co_await ctx.ld<double>(q.at(r, c));
                    local = std::max(local, std::abs(v));
                    co_await ctx.compute(2);
                }
            }
            co_await ctx.lock(errLock);
            double g = co_await ctx.ld<double>(err);
            if (local > g)
                co_await ctx.st<double>(err, local);
            co_await ctx.unlock(errLock);
            co_await ctx.barrier(bar);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        std::vector<double> rpsi = initialPsi();
        std::vector<double> rq(n * n, 0.0);
        double rerr = 0.0;
        for (int step = 0; step < steps; ++step) {
            for (int pass = 0; pass < relaxPasses; ++pass) {
                for (int color = 0; color < 2; ++color) {
                    for (size_t r = 1; r < n - 1; ++r) {
                        size_t c0 = 1 + ((r + 1 + color) & 1);
                        for (size_t c = c0; c < n - 1; c += 2) {
                            rpsi[r * n + c] = 0.25 *
                                (rpsi[(r - 1) * n + c] +
                                 rpsi[(r + 1) * n + c] +
                                 rpsi[r * n + c - 1] +
                                 rpsi[r * n + c + 1] - rq[r * n + c]);
                        }
                    }
                }
            }
            for (size_t r = 1; r < n - 1; ++r) {
                for (size_t c = 1; c < n - 1; ++c) {
                    rq[r * n + c] = 0.1 *
                        (rpsi[(r - 1) * n + c] + rpsi[(r + 1) * n + c] +
                         rpsi[r * n + c - 1] + rpsi[r * n + c + 1] -
                         4.0 * rpsi[r * n + c]);
                }
            }
            for (size_t r = 1; r < n - 1; ++r)
                for (size_t c = 1; c < n - 1; ++c)
                    rerr = std::max(rerr, std::abs(rq[r * n + c]));
        }
        if (maxAbsDiff(readVec(m, psi.base, n * n), rpsi) != 0.0)
            return false;
        if (maxAbsDiff(readVec(m, q.base, n * n), rq) != 0.0)
            return false;
        return m.read<double>(err) == rerr;
    }

  private:
    std::vector<double>
    initialPsi() const
    {
        std::vector<double> v(n * n, 0.0);
        for (size_t i = 0; i < n; ++i) {
            v[i] = std::sin(0.1 * static_cast<double>(i));
            v[(n - 1) * n + i] = 1.0;
        }
        return v;
    }

    size_t n;
    int steps;
    int relaxPasses;
    SharedGrid2D psi, q;
    Addr err = 0;
    int errLock = 0;
    int bar = 0;
};

WorkloadRegistrar regOcean("ocean", [](const Options &o) {
    return std::make_unique<OceanWorkload>(o);
});

} // namespace
} // namespace slipsim
