/**
 * @file
 * CG: NAS conjugate-gradient kernel (Table 2: n = 1400).
 *
 * Sparse SPD matrix-vector products with row partitioning; the search
 * vector p is read by every task (wide sharing), and the dot-product
 * reductions are accumulated into shared scalars under a lock with
 * barriers around them — the reduction-variable pattern of the paper.
 * Reduction order is timing-dependent, so verification uses a
 * tolerance against a host CG with canonical order.
 */

#include <cmath>
#include <memory>
#include <vector>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "sim/random.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

class CgWorkload : public Workload
{
  public:
    explicit
    CgWorkload(const Options &o)
        : n(static_cast<size_t>(
              o.getInt("n", o.getBool("paper", false) ? 1400 : 256))),
          iters(static_cast<int>(o.getInt("iters", 6))),
          nnzPerRow(static_cast<size_t>(o.getInt("nnz", 56)))
    {
        buildMatrix();
    }

    std::string name() const override { return "cg"; }

    std::string
    sizeDescription() const override
    {
        return "n=" + std::to_string(n) + ", " + std::to_string(iters) +
               " CG iterations";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        const int nt = rt.numTasks();
        auto v = [&](SharedVec &sv) {
            sv.n = n;
            sv.base = rt.alloc().alloc(n * sizeof(double),
                                       Placement::Partitioned, nt);
        };
        v(x);
        v(r);
        v(p);
        v(q);
        scalars = rt.alloc().alloc(FunctionalMemory::pageBytes,
                                   Placement::Fixed, 1, 0);
        redLock = rt.makeLock(0);
        bar = rt.makeBarrier();

        // x = 0, r = p = b.
        std::vector<double> b = rhs();
        writeVec(rt.fmem(), x.base, std::vector<double>(n, 0.0));
        writeVec(rt.fmem(), r.base, b);
        writeVec(rt.fmem(), p.base, b);
        writeVec(rt.fmem(), q.base, std::vector<double>(n, 0.0));

        // scalars: [0]=rho, [1]=pq, [2]=rhoNew
        for (int i = 0; i < 3; ++i)
            rt.fmem().write<double>(scalarAt(i), 0.0);
        // rho = b.b (host init; measured region starts at iteration
        // loop, as in NAS).
        double rho = 0.0;
        for (double bv : b)
            rho += bv * bv;
        rt.fmem().write<double>(scalarAt(0), rho);
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        Span rows = partition(n, ctx.tid(), ctx.numTasks());

        for (int it = 0; it < iters; ++it) {
            // q = A p  (reads p across all partitions).
            for (size_t i = rows.lo; i < rows.hi; ++i) {
                double acc = 0.0;
                for (size_t k = rowPtr[i]; k < rowPtr[i + 1]; ++k) {
                    double pv =
                        co_await ctx.ld<double>(p.at(colIdx[k]));
                    acc += vals[k] * pv;
                    co_await ctx.compute(2);
                }
                co_await ctx.st<double>(q.at(i), acc);
            }

            // pq = sum p.q  (reduction under a lock).
            double local = 0.0;
            for (size_t i = rows.lo; i < rows.hi; ++i) {
                double pv = co_await ctx.ld<double>(p.at(i));
                double qv = co_await ctx.ld<double>(q.at(i));
                local += pv * qv;
                co_await ctx.compute(2);
            }
            if (ctx.tid() == 0) {
                // Reset the accumulator for this iteration first.
                co_await ctx.st<double>(scalarAt(1), 0.0);
            }
            co_await ctx.barrier(bar);
            co_await ctx.lock(redLock);
            double g = co_await ctx.ld<double>(scalarAt(1));
            co_await ctx.st<double>(scalarAt(1), g + local);
            co_await ctx.unlock(redLock);
            co_await ctx.barrier(bar);

            double rho = co_await ctx.ld<double>(scalarAt(0));
            double pq = co_await ctx.ld<double>(scalarAt(1));
            double alpha = rho / pq;

            // x += alpha p;  r -= alpha q;  local rho' partial.
            local = 0.0;
            for (size_t i = rows.lo; i < rows.hi; ++i) {
                double xv = co_await ctx.ld<double>(x.at(i));
                double pv = co_await ctx.ld<double>(p.at(i));
                co_await ctx.st<double>(x.at(i), xv + alpha * pv);
                double rv = co_await ctx.ld<double>(r.at(i));
                double qv = co_await ctx.ld<double>(q.at(i));
                double nr = rv - alpha * qv;
                co_await ctx.st<double>(r.at(i), nr);
                local += nr * nr;
                co_await ctx.compute(6);
            }
            if (ctx.tid() == 0)
                co_await ctx.st<double>(scalarAt(2), 0.0);
            co_await ctx.barrier(bar);
            co_await ctx.lock(redLock);
            double g2 = co_await ctx.ld<double>(scalarAt(2));
            co_await ctx.st<double>(scalarAt(2), g2 + local);
            co_await ctx.unlock(redLock);
            co_await ctx.barrier(bar);

            double rhoNew = co_await ctx.ld<double>(scalarAt(2));
            double beta = rhoNew / rho;

            // p = r + beta p.
            for (size_t i = rows.lo; i < rows.hi; ++i) {
                double rv = co_await ctx.ld<double>(r.at(i));
                double pv = co_await ctx.ld<double>(p.at(i));
                co_await ctx.st<double>(p.at(i), rv + beta * pv);
                co_await ctx.compute(2);
            }
            if (ctx.tid() == 0)
                co_await ctx.st<double>(scalarAt(0), rhoNew);
            co_await ctx.barrier(bar);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        // Host CG in canonical order.
        std::vector<double> b = rhs();
        std::vector<double> hx(n, 0.0), hr = b, hp = b, hq(n, 0.0);
        double rho = 0.0;
        for (double bv : b)
            rho += bv * bv;
        for (int it = 0; it < iters; ++it) {
            for (size_t i = 0; i < n; ++i) {
                double acc = 0.0;
                for (size_t k = rowPtr[i]; k < rowPtr[i + 1]; ++k)
                    acc += vals[k] * hp[colIdx[k]];
                hq[i] = acc;
            }
            double pq = 0.0;
            for (size_t i = 0; i < n; ++i)
                pq += hp[i] * hq[i];
            double alpha = rho / pq;
            double rhoNew = 0.0;
            for (size_t i = 0; i < n; ++i) {
                hx[i] += alpha * hp[i];
                hr[i] -= alpha * hq[i];
                rhoNew += hr[i] * hr[i];
            }
            double beta = rhoNew / rho;
            for (size_t i = 0; i < n; ++i)
                hp[i] = hr[i] + beta * hp[i];
            rho = rhoNew;
        }

        std::vector<double> gx = readVec(m, x.base, n);
        double scale = 0.0;
        for (double v : hx)
            scale = std::max(scale, std::abs(v));
        return maxAbsDiff(gx, hx) <= 1e-9 * std::max(scale, 1.0);
    }

  private:
    Addr
    scalarAt(int i) const
    {
        // One scalar per line to avoid false sharing between them.
        return scalars + static_cast<Addr>(i) * lineBytes;
    }

    void
    buildMatrix()
    {
        // Deterministic sparse SPD-ish matrix: strong diagonal plus
        // nnzPerRow-1 symmetric off-diagonal entries.
        Rng rng(42);
        std::vector<std::vector<std::pair<size_t, double>>> rows(n);
        for (size_t i = 0; i < n; ++i) {
            rows[i].push_back({i, static_cast<double>(nnzPerRow) + 4});
            for (size_t e = 0; e + 1 < nnzPerRow; ++e) {
                size_t j = rng.below(n);
                if (j == i)
                    continue;
                double v = 0.5 / (1.0 + static_cast<double>(e));
                rows[i].push_back({j, v});
            }
        }
        rowPtr.assign(n + 1, 0);
        for (size_t i = 0; i < n; ++i)
            rowPtr[i + 1] = rowPtr[i] + rows[i].size();
        for (size_t i = 0; i < n; ++i) {
            for (auto &[j, v] : rows[i]) {
                colIdx.push_back(j);
                vals.push_back(v);
            }
        }
    }

    std::vector<double>
    rhs() const
    {
        std::vector<double> b(n);
        for (size_t i = 0; i < n; ++i)
            b[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
        return b;
    }

    size_t n;
    int iters;
    size_t nnzPerRow;
    SharedVec x, r, p, q;
    Addr scalars = 0;
    int redLock = 0;
    int bar = 0;
    std::vector<size_t> rowPtr, colIdx;
    std::vector<double> vals;
};

WorkloadRegistrar regCg("cg", [](const Options &o) {
    return std::make_unique<CgWorkload>(o);
});

} // namespace
} // namespace slipsim
