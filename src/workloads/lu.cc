/**
 * @file
 * LU: blocked dense LU factorization without pivoting, Splash-2 style
 * (Table 2: 512x512).
 *
 * Blocks are laid out contiguously and assigned 2-D-cyclically to
 * tasks; each outer step factorizes the diagonal block, updates the
 * perimeter, then the interior, with barriers between phases.  Every
 * task performs the identical floating-point sequence per element, so
 * verification is bit-exact against a sequential host reference.
 */

#include <cmath>
#include <memory>
#include <vector>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

class LuWorkload : public Workload
{
  public:
    explicit
    LuWorkload(const Options &o)
        : n(static_cast<size_t>(
              o.getInt("n", o.getBool("paper", false) ? 512 : 64))),
          blockDim(static_cast<size_t>(o.getInt("block", 16)))
    {
        if (n % blockDim != 0)
            fatal("lu: n (%zu) must be a multiple of block (%zu)", n,
                  blockDim);
        nb = n / blockDim;
    }

    std::string name() const override { return "lu"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(n) + "x" + std::to_string(n) +
               ", block " + std::to_string(blockDim);
    }

    void
    setup(ParallelRuntime &rt) override
    {
        ntasks = rt.numTasks();
        // Task grid p1 x p2 for 2-D cyclic block ownership.
        p1 = 1;
        while ((p1 * 2) * (p1 * 2) <= ntasks)
            p1 *= 2;
        while (ntasks % p1 != 0)
            p1 /= 2;
        p2 = ntasks / p1;

        // Each block is contiguous and homed on its owner's node.
        const size_t bbytes = blockDim * blockDim * sizeof(double);
        blocks.resize(nb * nb);
        for (size_t bi = 0; bi < nb; ++bi) {
            for (size_t bj = 0; bj < nb; ++bj) {
                int own = owner(bi, bj);
                NodeId node = static_cast<NodeId>(
                    own / (rt.mode() == Mode::Double ? 2 : 1));
                node %= rt.machine().numCmps;
                blocks[bi * nb + bj] = rt.alloc().alloc(
                    bbytes, Placement::Fixed, 1, node);
            }
        }
        bar = rt.makeBarrier();

        std::vector<double> a = initial();
        for (size_t bi = 0; bi < nb; ++bi) {
            for (size_t bj = 0; bj < nb; ++bj) {
                std::vector<double> blk = gatherBlock(a, bi, bj);
                rt.fmem().writeBytes(blocks[bi * nb + bj], blk.data(),
                                     bbytes);
            }
        }
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        const size_t B = blockDim;
        const size_t bbytes = B * B * sizeof(double);
        std::vector<double> diag(B * B), mine(B * B), other(B * B);

        for (size_t k = 0; k < nb; ++k) {
            // Phase 1: factor the diagonal block.
            if (owner(k, k) == ctx.tid()) {
                co_await ctx.ldBuf(blockAddr(k, k), diag.data(),
                                   bbytes);
                factorDiag(diag);
                co_await ctx.compute(flops(2 * B * B * B / 3));
                co_await ctx.stBuf(blockAddr(k, k), diag.data(),
                                   bbytes);
            }
            co_await ctx.barrier(bar);

            // Phase 2: perimeter row (k,j) and column (i,k) updates.
            co_await ctx.ldBuf(blockAddr(k, k), diag.data(), bbytes);
            for (size_t j = k + 1; j < nb; ++j) {
                if (owner(k, j) != ctx.tid())
                    continue;
                co_await ctx.ldBuf(blockAddr(k, j), mine.data(),
                                   bbytes);
                lowerSolve(diag, mine);
                co_await ctx.compute(flops(B * B * B));
                co_await ctx.stBuf(blockAddr(k, j), mine.data(),
                                   bbytes);
            }
            for (size_t i = k + 1; i < nb; ++i) {
                if (owner(i, k) != ctx.tid())
                    continue;
                co_await ctx.ldBuf(blockAddr(i, k), mine.data(),
                                   bbytes);
                upperSolve(diag, mine);
                co_await ctx.compute(flops(B * B * B));
                co_await ctx.stBuf(blockAddr(i, k), mine.data(),
                                   bbytes);
            }
            co_await ctx.barrier(bar);

            // Phase 3: interior updates A[i][j] -= A[i][k] * A[k][j].
            for (size_t i = k + 1; i < nb; ++i) {
                for (size_t j = k + 1; j < nb; ++j) {
                    if (owner(i, j) != ctx.tid())
                        continue;
                    co_await ctx.ldBuf(blockAddr(i, k), diag.data(),
                                       bbytes);
                    co_await ctx.ldBuf(blockAddr(k, j), other.data(),
                                       bbytes);
                    co_await ctx.ldBuf(blockAddr(i, j), mine.data(),
                                       bbytes);
                    matmulSub(diag, other, mine);
                    co_await ctx.compute(flops(2 * B * B * B));
                    co_await ctx.stBuf(blockAddr(i, j), mine.data(),
                                       bbytes);
                }
            }
            co_await ctx.barrier(bar);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        // Sequential blocked LU with the identical per-element
        // arithmetic.
        const size_t B = blockDim;
        std::vector<double> a = initial();
        std::vector<std::vector<double>> blk(nb * nb);
        for (size_t bi = 0; bi < nb; ++bi)
            for (size_t bj = 0; bj < nb; ++bj)
                blk[bi * nb + bj] = gatherBlock(a, bi, bj);

        for (size_t k = 0; k < nb; ++k) {
            factorDiag(blk[k * nb + k]);
            for (size_t j = k + 1; j < nb; ++j)
                lowerSolve(blk[k * nb + k], blk[k * nb + j]);
            for (size_t i = k + 1; i < nb; ++i)
                upperSolve(blk[k * nb + k], blk[i * nb + k]);
            for (size_t i = k + 1; i < nb; ++i)
                for (size_t j = k + 1; j < nb; ++j)
                    matmulSub(blk[i * nb + k], blk[k * nb + j],
                              blk[i * nb + j]);
        }

        const size_t bbytes = B * B * sizeof(double);
        for (size_t bi = 0; bi < nb; ++bi) {
            for (size_t bj = 0; bj < nb; ++bj) {
                std::vector<double> got(B * B);
                m.readBytes(blocks[bi * nb + bj], got.data(), bbytes);
                if (maxAbsDiff(got, blk[bi * nb + bj]) != 0.0)
                    return false;
            }
        }
        return true;
    }

  private:
    int
    owner(size_t bi, size_t bj) const
    {
        return static_cast<int>((bi % static_cast<size_t>(p1)) *
                                    static_cast<size_t>(p2) +
                                bj % static_cast<size_t>(p2));
    }

    Addr blockAddr(size_t bi, size_t bj) const
    { return blocks[bi * nb + bj]; }

    static Tick
    flops(size_t f)
    {
        return static_cast<Tick>(f);
    }

    std::vector<double>
    initial() const
    {
        // Diagonally dominant, deterministic.
        std::vector<double> a(n * n);
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < n; ++j) {
                a[i * n + j] =
                    i == j ? static_cast<double>(n)
                           : 1.0 / (1.0 + std::abs(
                                 static_cast<double>(i) -
                                 static_cast<double>(j)));
            }
        }
        return a;
    }

    std::vector<double>
    gatherBlock(const std::vector<double> &a, size_t bi,
                size_t bj) const
    {
        const size_t B = blockDim;
        std::vector<double> blk(B * B);
        for (size_t r = 0; r < B; ++r)
            for (size_t c = 0; c < B; ++c)
                blk[r * B + c] = a[(bi * B + r) * n + bj * B + c];
        return blk;
    }

    /** In-place LU of a BxB block (no pivoting). */
    void
    factorDiag(std::vector<double> &d) const
    {
        const size_t B = blockDim;
        for (size_t k = 0; k < B; ++k) {
            for (size_t i = k + 1; i < B; ++i) {
                d[i * B + k] /= d[k * B + k];
                for (size_t j = k + 1; j < B; ++j)
                    d[i * B + j] -= d[i * B + k] * d[k * B + j];
            }
        }
    }

    /** Row block: A[k][j] := L(k,k)^-1 A[k][j]. */
    void
    lowerSolve(const std::vector<double> &d,
               std::vector<double> &b) const
    {
        const size_t B = blockDim;
        for (size_t c = 0; c < B; ++c) {
            for (size_t r = 1; r < B; ++r) {
                for (size_t k = 0; k < r; ++k)
                    b[r * B + c] -= d[r * B + k] * b[k * B + c];
            }
        }
    }

    /** Column block: A[i][k] := A[i][k] U(k,k)^-1. */
    void
    upperSolve(const std::vector<double> &d,
               std::vector<double> &b) const
    {
        const size_t B = blockDim;
        for (size_t r = 0; r < B; ++r) {
            for (size_t c = 0; c < B; ++c) {
                for (size_t k = 0; k < c; ++k)
                    b[r * B + c] -= b[r * B + k] * d[k * B + c];
                b[r * B + c] /= d[c * B + c];
            }
        }
    }

    /** C -= A * B. */
    void
    matmulSub(const std::vector<double> &a,
              const std::vector<double> &b,
              std::vector<double> &c) const
    {
        const size_t B = blockDim;
        for (size_t r = 0; r < B; ++r) {
            for (size_t k = 0; k < B; ++k) {
                double ark = a[r * B + k];
                for (size_t j = 0; j < B; ++j)
                    c[r * B + j] -= ark * b[k * B + j];
            }
        }
    }

    size_t n;
    size_t blockDim;
    size_t nb;
    int ntasks = 0;
    int p1 = 1, p2 = 1;
    int bar = 0;
    std::vector<Addr> blocks;
};

WorkloadRegistrar regLu("lu", [](const Options &o) {
    return std::make_unique<LuWorkload>(o);
});

} // namespace
} // namespace slipsim
