/**
 * @file
 * Synthetic workloads used by tests and examples:
 *
 *  - "stream":    partitioned read-modify-write sweeps with barriers
 *                 (no sharing; the simplest verifiable SPMD program).
 *  - "neighbor":  producer-consumer nearest-neighbour exchange.
 *  - "migratory": lock-protected shared counters (migratory lines).
 *  - "divergent": the A-stream reads a stale work descriptor and does
 *                 far more work than the R-stream — exercises deviation
 *                 detection and recovery.
 *  - "dynamic":   dynamically scheduled chunk queue using
 *                 publishDecision/consumeDecision.
 */

#include <algorithm>
#include <memory>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

constexpr Addr dbl = sizeof(double);
constexpr Addr u64 = sizeof(std::uint64_t);

// --------------------------------------------------------------------------
class StreamWorkload : public Workload
{
  public:
    explicit
    StreamWorkload(const Options &o)
        : n(static_cast<size_t>(o.getInt("n", 4096))),
          iters(static_cast<int>(o.getInt("iters", 4)))
    {}

    std::string name() const override { return "stream"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(n) + " doubles, " +
               std::to_string(iters) + " sweeps";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        ntasks = rt.numTasks();
        data = rt.alloc().alloc(n * dbl, Placement::Partitioned, ntasks);
        bar = rt.makeBarrier();
        for (size_t i = 0; i < n; ++i)
            rt.fmem().write<double>(data + i * dbl, 0.5 * i);
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        const size_t nt = ctx.numTasks();
        const size_t lo = n * ctx.tid() / nt;
        const size_t hi = n * (ctx.tid() + 1) / nt;
        for (int it = 0; it < iters; ++it) {
            for (size_t i = lo; i < hi; ++i) {
                double v = co_await ctx.ld<double>(data + i * dbl);
                co_await ctx.st<double>(data + i * dbl, v + 1.0);
                co_await ctx.compute(2);
            }
            co_await ctx.barrier(bar);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        for (size_t i = 0; i < n; ++i) {
            double v = m.read<double>(data + i * dbl);
            if (v != 0.5 * i + iters)
                return false;
        }
        return true;
    }

  private:
    size_t n;
    int iters;
    int ntasks = 0;
    int bar = 0;
    Addr data = 0;
};

// --------------------------------------------------------------------------
class NeighborWorkload : public Workload
{
  public:
    explicit
    NeighborWorkload(const Options &o)
        : n(static_cast<size_t>(o.getInt("n", 4096))),
          iters(static_cast<int>(o.getInt("iters", 4)))
    {}

    std::string name() const override { return "neighbor"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(n) + " doubles, " +
               std::to_string(iters) + " exchanges";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        ntasks = rt.numTasks();
        cur = rt.alloc().alloc(n * dbl, Placement::Partitioned, ntasks);
        nxt = rt.alloc().alloc(n * dbl, Placement::Partitioned, ntasks);
        bar = rt.makeBarrier();
        for (size_t i = 0; i < n; ++i) {
            rt.fmem().write<double>(cur + i * dbl,
                                    static_cast<double>(i % 17));
            rt.fmem().write<double>(nxt + i * dbl, 0.0);
        }
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        const size_t nt = ctx.numTasks();
        const size_t lo = n * ctx.tid() / nt;
        const size_t hi = n * (ctx.tid() + 1) / nt;
        Addr a = cur, b = nxt;
        for (int it = 0; it < iters; ++it) {
            for (size_t i = lo; i < hi; ++i) {
                size_t il = i == 0 ? n - 1 : i - 1;
                size_t ir = i == n - 1 ? 0 : i + 1;
                double vl = co_await ctx.ld<double>(a + il * dbl);
                double vc = co_await ctx.ld<double>(a + i * dbl);
                double vr = co_await ctx.ld<double>(a + ir * dbl);
                co_await ctx.st<double>(b + i * dbl,
                                        (vl + vc + vr) / 3.0);
                co_await ctx.compute(4);
            }
            co_await ctx.barrier(bar);
            std::swap(a, b);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        // Host-side reference computation.
        std::vector<double> ref(n), tmp(n);
        for (size_t i = 0; i < n; ++i)
            ref[i] = static_cast<double>(i % 17);
        for (int it = 0; it < iters; ++it) {
            for (size_t i = 0; i < n; ++i) {
                size_t il = i == 0 ? n - 1 : i - 1;
                size_t ir = i == n - 1 ? 0 : i + 1;
                tmp[i] = (ref[il] + ref[i] + ref[ir]) / 3.0;
            }
            ref.swap(tmp);
        }
        Addr final = iters % 2 == 0 ? cur : nxt;
        for (size_t i = 0; i < n; ++i) {
            double v = m.read<double>(final + i * dbl);
            if (std::abs(v - ref[i]) > 1e-9)
                return false;
        }
        return true;
    }

  private:
    size_t n;
    int iters;
    int ntasks = 0;
    int bar = 0;
    Addr cur = 0, nxt = 0;
};

// --------------------------------------------------------------------------
class MigratoryWorkload : public Workload
{
  public:
    explicit
    MigratoryWorkload(const Options &o)
        : counters(static_cast<int>(o.getInt("counters", 8))),
          updates(static_cast<int>(o.getInt("updates", 32)))
    {}

    std::string name() const override { return "migratory"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(counters) + " counters x " +
               std::to_string(updates) + " updates/task";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        ntasks = rt.numTasks();
        // One counter per line so each is an independent migratory
        // object.
        data = rt.alloc().alloc(
            static_cast<size_t>(counters) * lineBytes,
            Placement::Interleaved);
        bar = rt.makeBarrier();
        for (int c = 0; c < counters; ++c) {
            lockIds.push_back(rt.makeLock());
            rt.fmem().write<std::uint64_t>(
                data + static_cast<Addr>(c) * lineBytes, 0);
        }
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        for (int u = 0; u < updates; ++u) {
            int c = (ctx.tid() + u) % counters;
            Addr a = data + static_cast<Addr>(c) * lineBytes;
            co_await ctx.lock(lockIds[c]);
            std::uint64_t v = co_await ctx.ld<std::uint64_t>(a);
            co_await ctx.compute(8);
            co_await ctx.st<std::uint64_t>(a, v + 1);
            co_await ctx.unlock(lockIds[c]);
            co_await ctx.compute(32);
        }
        co_await ctx.barrier(bar);
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        std::uint64_t total = 0;
        for (int c = 0; c < counters; ++c) {
            total += m.read<std::uint64_t>(
                data + static_cast<Addr>(c) * lineBytes);
        }
        return total == static_cast<std::uint64_t>(ntasks) * updates;
    }

  private:
    int counters;
    int updates;
    int ntasks = 0;
    int bar = 0;
    Addr data = 0;
    std::vector<int> lockIds;
};

// --------------------------------------------------------------------------
class DivergentWorkload : public Workload
{
  public:
    explicit
    DivergentWorkload(const Options &o)
        : sessions(static_cast<int>(o.getInt("sessions", 6))),
          bigWork(static_cast<Tick>(o.getInt("bigWork", 200000))),
          smallWork(static_cast<Tick>(o.getInt("smallWork", 200)))
    {}

    std::string name() const override { return "divergent"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(sessions) + " sessions";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        ntasks = rt.numTasks();
        // One work descriptor per session, initialized huge; each
        // session's R-streams shrink the *next* session's descriptor
        // before doing their (small) work.  An A-stream running ahead
        // reads the stale huge value and burns bigWork cycles,
        // falling behind its R-stream -> deviation.
        work = rt.alloc().alloc(
            static_cast<size_t>(sessions + 1) * lineBytes,
            Placement::Fixed, 1, 0);
        done = rt.alloc().alloc(
            static_cast<size_t>(ntasks) * lineBytes,
            Placement::Partitioned, ntasks);
        bar = rt.makeBarrier();
        for (int s = 0; s <= sessions; ++s) {
            rt.fmem().write<std::uint64_t>(
                work + static_cast<Addr>(s) * lineBytes, bigWork);
        }
        rt.fmem().write<std::uint64_t>(work, smallWork);  // session 0
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        for (int s = 0; s < sessions; ++s) {
            // Shrink the next session's descriptor (A-streams skip
            // this store, so a leading A-stream later reads bigWork).
            if (ctx.tid() == 0) {
                co_await ctx.st<std::uint64_t>(
                    work + static_cast<Addr>(s + 1) * lineBytes,
                    smallWork);
            }
            std::uint64_t w = co_await ctx.ld<std::uint64_t>(
                work + static_cast<Addr>(s) * lineBytes);
            co_await ctx.compute(static_cast<Tick>(w));
            co_await ctx.barrier(bar);
        }
        co_await ctx.st<std::uint64_t>(
            done + static_cast<Addr>(ctx.tid()) * lineBytes, 1);
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        for (int t = 0; t < ntasks; ++t) {
            if (m.read<std::uint64_t>(
                    done + static_cast<Addr>(t) * lineBytes) != 1) {
                return false;
            }
        }
        return true;
    }

  private:
    int sessions;
    Tick bigWork;
    Tick smallWork;
    int ntasks = 0;
    int bar = 0;
    Addr work = 0;
    Addr done = 0;
};

// --------------------------------------------------------------------------
class DynamicWorkload : public Workload
{
  public:
    explicit
    DynamicWorkload(const Options &o)
        : chunks(static_cast<int>(o.getInt("chunks", 64))),
          chunkWork(static_cast<Tick>(o.getInt("chunkWork", 500)))
    {}

    std::string name() const override { return "dynamic"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(chunks) + " chunks";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        ntasks = rt.numTasks();
        next = rt.alloc().alloc(lineBytes, Placement::Fixed, 1, 0);
        out = rt.alloc().alloc(
            static_cast<size_t>(chunks) * lineBytes,
            Placement::Interleaved);
        qlock = rt.makeLock(0);
        bar = rt.makeBarrier();
        rt.fmem().write<std::uint64_t>(next, 0);
        for (int c = 0; c < chunks; ++c) {
            rt.fmem().write<std::uint64_t>(
                out + static_cast<Addr>(c) * lineBytes, 0);
        }
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        // Dynamic scheduling: the R-stream pulls chunks from a shared
        // queue under a lock and publishes each decision; the A-stream
        // consumes decisions instead of touching the queue
        // (Section 3.1, "dynamic scheduling").
        while (true) {
            std::uint64_t c;
            if (ctx.isAStream()) {
                c = co_await ctx.consumeDecision();
            } else {
                co_await ctx.lock(qlock);
                c = co_await ctx.ld<std::uint64_t>(next);
                co_await ctx.st<std::uint64_t>(next, c + 1);
                co_await ctx.unlock(qlock);
                ctx.publishDecision(c);
            }
            if (c >= static_cast<std::uint64_t>(chunks))
                break;
            // Process the chunk: touch its line and do some work.
            Addr a = out + static_cast<Addr>(c) * lineBytes;
            std::uint64_t v = co_await ctx.ld<std::uint64_t>(a);
            co_await ctx.compute(chunkWork);
            co_await ctx.st<std::uint64_t>(a, v + 1);
        }
        co_await ctx.barrier(bar);
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        for (int c = 0; c < chunks; ++c) {
            if (m.read<std::uint64_t>(
                    out + static_cast<Addr>(c) * lineBytes) != 1) {
                return false;
            }
        }
        return true;
    }

  private:
    int chunks;
    Tick chunkWork;
    int ntasks = 0;
    int bar = 0;
    int qlock = 0;
    Addr next = 0;
    Addr out = 0;
};

WorkloadRegistrar regStream("stream", [](const Options &o) {
    return std::make_unique<StreamWorkload>(o);
});
WorkloadRegistrar regNeighbor("neighbor", [](const Options &o) {
    return std::make_unique<NeighborWorkload>(o);
});
WorkloadRegistrar regMigratory("migratory", [](const Options &o) {
    return std::make_unique<MigratoryWorkload>(o);
});
WorkloadRegistrar regDivergent("divergent", [](const Options &o) {
    return std::make_unique<DivergentWorkload>(o);
});
WorkloadRegistrar regDynamic("dynamic", [](const Options &o) {
    return std::make_unique<DynamicWorkload>(o);
});

} // namespace
} // namespace slipsim
