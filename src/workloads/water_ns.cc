/**
 * @file
 * Water-NS: n-squared molecular dynamics (Table 2: 512 molecules).
 *
 * Each molecule is a ~1.3 KB record (positions, derivatives, forces),
 * as in Splash-2 Water; a pair interaction reads the position region
 * of both records (several cache lines each).  The pair list is
 * block-partitioned and forces accumulate into private partials that
 * are merged into the shared records under per-molecule locks
 * (Splash-2 INTERF).  With the paper's 128 KB Water L2, the record
 * working set does not fit, which is what makes Water-NS
 * stall-dominated and slipstream-friendly.  Accumulation order is
 * timing-dependent, so verification uses a tolerance.
 */

#include <cmath>
#include <memory>
#include <vector>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

class WaterNsWorkload : public Workload
{
  public:
    explicit
    WaterNsWorkload(const Options &o)
        : nmol(static_cast<size_t>(
              o.getInt("mol", o.getBool("paper", false) ? 512 : 64))),
          steps(static_cast<int>(o.getInt("steps", 2))),
          pairFlop(static_cast<Tick>(o.getInt("pairflop", 800))),
          recBytes(static_cast<size_t>(o.getInt("record", 1344)))
    {
        recBytes = (recBytes + lineBytes - 1) / lineBytes * lineBytes;
    }

    std::string name() const override { return "water-ns"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(nmol) + " molecules (" +
               std::to_string(recBytes) + "B records), " +
               std::to_string(steps) + " timesteps";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        const int nt = rt.numTasks();
        recs = rt.alloc().alloc(nmol * recBytes,
                                Placement::Partitioned, nt);
        vel.base = rt.alloc().alloc(3 * nmol * sizeof(double),
                                    Placement::Partitioned, nt);
        vel.n = 3 * nmol;
        bar = rt.makeBarrier();
        for (size_t i = 0; i < nmol; ++i)
            molLocks.push_back(rt.makeLock());

        std::vector<double> p = initialPos();
        for (size_t i = 0; i < nmol; ++i) {
            rt.fmem().writeBytes(posAddr(i), &p[3 * i],
                                 3 * sizeof(double));
            double zero[3] = {0, 0, 0};
            rt.fmem().writeBytes(frcAddr(i), zero, sizeof(zero));
        }
        writeVec(rt.fmem(), vel.base,
                 std::vector<double>(3 * nmol, 0.0));
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        Span mine = partition(nmol, ctx.tid(), ctx.numTasks());
        const size_t npairs = nmol * (nmol - 1) / 2;
        Span pairs = partition(npairs, ctx.tid(), ctx.numTasks());
        std::vector<double> buf(posRegion / sizeof(double));

        for (int step = 0; step < steps; ++step) {
            // Predict: drift own molecules, zero own accumulators.
            for (size_t i = mine.lo; i < mine.hi; ++i) {
                double p[3], v[3];
                co_await ctx.ldBuf(posAddr(i), buf.data(), posRegion);
                for (int d = 0; d < 3; ++d) {
                    p[d] = buf[d];
                    v[d] = co_await ctx.ld<double>(vel.at(3 * i + d));
                    buf[d] = p[d] + dt * v[d];
                }
                co_await ctx.compute(12);
                co_await ctx.stBuf(posAddr(i), buf.data(), posRegion);
                double zero[3] = {0, 0, 0};
                co_await ctx.stBuf(frcAddr(i), zero, sizeof(zero));
            }
            co_await ctx.barrier(bar);

            // Forces: my slice of the pair list.  Both molecules'
            // shared accumulators are updated per pair under their
            // locks (Splash-2 INTERF / UPDATE_FORCES) — the lock and
            // store traffic the A-stream skips to build its lead.
            for (size_t k = pairs.lo; k < pairs.hi; ++k) {
                auto [i, j] = unflatten(k);
                double pi[3], pj[3], f[3];
                co_await readPos(ctx, i, pi);
                co_await readPos(ctx, j, pj);
                pairForce(pi, pj, f);
                co_await ctx.compute(pairFlop);

                co_await ctx.lock(molLocks[i]);
                for (int d = 0; d < 3; ++d) {
                    Addr a = frcAddr(i) +
                             static_cast<Addr>(d) * sizeof(double);
                    double cur = co_await ctx.ld<double>(a);
                    co_await ctx.st<double>(a, cur + f[d]);
                }
                co_await ctx.unlock(molLocks[i]);

                co_await ctx.lock(molLocks[j]);
                for (int d = 0; d < 3; ++d) {
                    Addr a = frcAddr(j) +
                             static_cast<Addr>(d) * sizeof(double);
                    double cur = co_await ctx.ld<double>(a);
                    co_await ctx.st<double>(a, cur - f[d]);
                }
                co_await ctx.unlock(molLocks[j]);
            }
            co_await ctx.barrier(bar);

            // Correct: integrate own molecules.
            for (size_t i = mine.lo; i < mine.hi; ++i) {
                for (int d = 0; d < 3; ++d) {
                    double v =
                        co_await ctx.ld<double>(vel.at(3 * i + d));
                    double f = co_await ctx.ld<double>(
                        frcAddr(i) +
                        static_cast<Addr>(d) * sizeof(double));
                    co_await ctx.st<double>(vel.at(3 * i + d),
                                            v + dt * f);
                    co_await ctx.compute(2);
                }
            }
            co_await ctx.barrier(bar);
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        std::vector<double> rp = initialPos();
        std::vector<double> rv(3 * nmol, 0.0), rf(3 * nmol, 0.0);
        for (int step = 0; step < steps; ++step) {
            for (size_t i = 0; i < nmol; ++i) {
                for (int d = 0; d < 3; ++d) {
                    rp[3 * i + d] += dt * rv[3 * i + d];
                    rf[3 * i + d] = 0.0;
                }
            }
            for (size_t i = 0; i < nmol; ++i) {
                for (size_t j = i + 1; j < nmol; ++j) {
                    double f[3];
                    pairForce(&rp[3 * i], &rp[3 * j], f);
                    for (int d = 0; d < 3; ++d) {
                        rf[3 * i + d] += f[d];
                        rf[3 * j + d] -= f[d];
                    }
                }
            }
            for (size_t i = 0; i < nmol; ++i)
                for (int d = 0; d < 3; ++d)
                    rv[3 * i + d] += dt * rf[3 * i + d];
        }

        double worst = 0.0;
        for (size_t i = 0; i < nmol; ++i) {
            double p[3];
            m.readBytes(posAddr(i), p, sizeof(p));
            for (int d = 0; d < 3; ++d)
                worst = std::max(worst,
                                 std::abs(p[d] - rp[3 * i + d]));
        }
        double dv = maxAbsDiff(readVec(m, vel.base, 3 * nmol), rv);
        return worst < 1e-9 && dv < 1e-9;
    }

  private:
    /** Position region of molecule i's record (atom coordinates:
     *  several lines, read per pair interaction). */
    Addr posAddr(size_t i) const { return recs + i * recBytes; }

    /** Force-accumulator region (separate lines, lock-protected). */
    Addr
    frcAddr(size_t i) const
    {
        return recs + i * recBytes + recBytes / 2;
    }

    /** Read molecule i's atom positions (touches the whole position
     *  region like Splash-2's 9-atom CSHIFT reads). */
    Coro<void>
    readPos(TaskContext &ctx, size_t i, double *out)
    {
        std::vector<double> buf(posRegion / sizeof(double));
        co_await ctx.ldBuf(posAddr(i), buf.data(), posRegion);
        for (int d = 0; d < 3; ++d)
            out[d] = buf[d];
    }

    std::pair<size_t, size_t>
    unflatten(size_t k) const
    {
        size_t i = 0;
        size_t rowlen = nmol - 1;
        while (k >= rowlen) {
            k -= rowlen;
            --rowlen;
            ++i;
        }
        return {i, i + 1 + k};
    }

    static void
    pairForce(const double *pi, const double *pj, double *f)
    {
        double dx = pi[0] - pj[0], dy = pi[1] - pj[1],
               dz = pi[2] - pj[2];
        double r2 = dx * dx + dy * dy + dz * dz + 0.1;
        double inv = 1.0 / (r2 * r2);
        f[0] = dx * inv;
        f[1] = dy * inv;
        f[2] = dz * inv;
    }

    std::vector<double>
    initialPos() const
    {
        std::vector<double> p(3 * nmol);
        size_t side = static_cast<size_t>(
            std::ceil(std::cbrt(static_cast<double>(nmol))));
        for (size_t i = 0; i < nmol; ++i) {
            p[3 * i] = static_cast<double>(i % side);
            p[3 * i + 1] = static_cast<double>((i / side) % side);
            p[3 * i + 2] = static_cast<double>(i / (side * side));
        }
        return p;
    }

    static constexpr double dt = 0.001;
    /** Bytes of a record's position region (9 atoms x 3 dims x 8B,
     *  rounded to lines). */
    static constexpr size_t posRegion = 256;

    size_t nmol;
    int steps;
    Tick pairFlop;
    size_t recBytes;
    Addr recs = 0;
    SharedVec vel;
    std::vector<int> molLocks;
    int bar = 0;
};

WorkloadRegistrar regWaterNs("water-ns", [](const Options &o) {
    return std::make_unique<WaterNsWorkload>(o);
});

} // namespace
} // namespace slipsim
