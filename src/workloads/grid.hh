/**
 * @file
 * Shared-array helpers used by the benchmark kernels: typed address
 * arithmetic over the simulated shared segment, partitioning helpers,
 * and host-side mirrors for verification.
 */

#ifndef SLIPSIM_WORKLOADS_GRID_HH
#define SLIPSIM_WORKLOADS_GRID_HH

#include <cmath>
#include <cstddef>
#include <vector>

#include "mem/functional_mem.hh"
#include "sim/types.hh"

namespace slipsim
{

/** A shared 1-D array of doubles. */
struct SharedVec
{
    Addr base = 0;
    size_t n = 0;

    Addr at(size_t i) const { return base + i * sizeof(double); }
    size_t bytes() const { return n * sizeof(double); }
};

/** A shared row-major 2-D array of doubles. */
struct SharedGrid2D
{
    Addr base = 0;
    size_t rows = 0;
    size_t cols = 0;

    size_t idx(size_t r, size_t c) const { return r * cols + c; }

    Addr
    at(size_t r, size_t c) const
    {
        return base + idx(r, c) * sizeof(double);
    }

    Addr rowAddr(size_t r) const { return at(r, 0); }
    size_t rowBytes() const { return cols * sizeof(double); }
    size_t bytes() const { return rows * cols * sizeof(double); }
};

/** A shared row-major 3-D array of doubles (z-major planes). */
struct SharedGrid3D
{
    Addr base = 0;
    size_t nz = 0, ny = 0, nx = 0;

    size_t
    idx(size_t z, size_t y, size_t x) const
    {
        return (z * ny + y) * nx + x;
    }

    Addr
    at(size_t z, size_t y, size_t x) const
    {
        return base + idx(z, y, x) * sizeof(double);
    }

    size_t planeBytes() const { return ny * nx * sizeof(double); }
    size_t bytes() const { return nz * ny * nx * sizeof(double); }
};

/** Contiguous block partition [lo, hi) of n items for task t of nt. */
struct Span
{
    size_t lo, hi;

    size_t size() const { return hi - lo; }
};

inline Span
partition(size_t n, int t, int nt)
{
    return Span{n * static_cast<size_t>(t) / static_cast<size_t>(nt),
                n * (static_cast<size_t>(t) + 1) /
                    static_cast<size_t>(nt)};
}

/** Read a shared vector into host memory (verification). */
inline std::vector<double>
readVec(const FunctionalMemory &m, Addr base, size_t n)
{
    std::vector<double> out(n);
    m.readBytes(base, out.data(), n * sizeof(double));
    return out;
}

/** Write a host vector into shared memory (initialization). */
inline void
writeVec(FunctionalMemory &m, Addr base, const std::vector<double> &v)
{
    m.writeBytes(base, v.data(), v.size() * sizeof(double));
}

/** Max absolute difference between two host vectors. */
inline double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double worst = 0.0;
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    if (a.size() != b.size())
        return 1e30;
    return worst;
}

} // namespace slipsim

#endif // SLIPSIM_WORKLOADS_GRID_HH
