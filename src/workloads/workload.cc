/**
 * @file
 * Workload registry.
 */

#include "workloads/workload.hh"

#include <algorithm>
#include <map>

#include "sim/logging.hh"

namespace slipsim
{

namespace
{

std::map<std::string, WorkloadFactory> &
registry()
{
    static std::map<std::string, WorkloadFactory> r;
    return r;
}

} // namespace

void
registerWorkload(const std::string &name, WorkloadFactory factory)
{
    registry()[name] = std::move(factory);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const Options &opts)
{
    auto it = registry().find(name);
    if (it == registry().end()) {
        std::string known;
        for (const auto &[k, v] : registry())
            known += (known.empty() ? "" : ", ") + k;
        fatal("unknown workload '%s' (known: %s)", name.c_str(),
              known.c_str());
    }
    return it->second(opts);
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &[k, v] : registry())
        names.push_back(k);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace slipsim
