/**
 * @file
 * Workload registry.
 */

#include "workloads/workload.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "sim/logging.hh"

namespace slipsim
{

namespace
{

// Registration happens from static initializers (single-threaded), but
// lookups come from sweep worker threads; guard both for safety.
std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, WorkloadFactory> &
registry()
{
    static std::map<std::string, WorkloadFactory> r;
    return r;
}

} // namespace

void
registerWorkload(const std::string &name, WorkloadFactory factory)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry()[name] = std::move(factory);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const Options &opts)
{
    WorkloadFactory factory;
    {
        std::lock_guard<std::mutex> lock(registryMutex());
        auto it = registry().find(name);
        if (it == registry().end()) {
            std::string known;
            for (const auto &[k, v] : registry())
                known += (known.empty() ? "" : ", ") + k;
            fatal("unknown workload '%s' (known: %s)", name.c_str(),
                  known.c_str());
        }
        factory = it->second;
    }
    // Invoke outside the lock: factories may themselves log or touch
    // other globals.
    return factory(opts);
}

std::vector<std::string>
workloadNames()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    for (const auto &[k, v] : registry())
        names.push_back(k);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace slipsim
