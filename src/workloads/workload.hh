/**
 * @file
 * Workload interface and registry.
 *
 * A workload is an SPMD program: setup() allocates its shared data and
 * synchronization objects and initializes values; task() is the
 * per-task kernel (the same coroutine body runs as R-stream, A-stream,
 * or plain task depending on the context); verify() checks the final
 * shared-memory contents, which also proves A-streams never corrupted
 * shared state.
 */

#ifndef SLIPSIM_WORKLOADS_WORKLOAD_HH
#define SLIPSIM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/coro.hh"
#include "sim/types.hh"

namespace slipsim
{

class FunctionalMemory;
class ParallelRuntime;
class TaskContext;

/** Base class of every benchmark kernel. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short registry name ("sor", "fft", ...). */
    virtual std::string name() const = 0;

    /** One-line description of the configured problem size. */
    virtual std::string sizeDescription() const = 0;

    /**
     * Allocate shared data (via rt.alloc()), create barriers/locks
     * (via rt.makeBarrier()/rt.makeLock()), and initialize values in
     * rt.fmem().  Called once before tasks start.
     */
    virtual void setup(ParallelRuntime &rt) = 0;

    /** The SPMD kernel body; ctx.tid()/ctx.numTasks() identify the
     *  partition. */
    virtual Coro<void> task(TaskContext &ctx) = 0;

    /**
     * Validate the final shared-memory contents (residual/checksum
     * against a host-side reference).  @return true if correct.
     */
    virtual bool verify(FunctionalMemory &mem) const = 0;
};

using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(const Options &)>;

/** Register a workload factory under @p name (static-init safe). */
void registerWorkload(const std::string &name, WorkloadFactory factory);

/** Instantiate a registered workload.  fatal() if unknown. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const Options &opts = {});

/** Names of all registered workloads, sorted. */
std::vector<std::string> workloadNames();

/** Helper used by workload translation units to self-register. */
struct WorkloadRegistrar
{
    WorkloadRegistrar(const std::string &name, WorkloadFactory f)
    {
        registerWorkload(name, std::move(f));
    }
};

} // namespace slipsim

#endif // SLIPSIM_WORKLOADS_WORKLOAD_HH
