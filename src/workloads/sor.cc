/**
 * @file
 * SOR: red-black successive over-relaxation on a 2-D grid
 * (Table 2: 1024x1024).
 *
 * Rows are block-partitioned; each half-sweep (one color) ends in a
 * barrier, so neighbouring tasks exchange boundary rows every session.
 * Red-black ordering makes the arithmetic independent of task
 * interleaving, so verification is bit-exact against a host reference.
 */

#include <memory>

#include "runtime/parallel_runtime.hh"
#include "runtime/task_context.hh"
#include "workloads/grid.hh"
#include "workloads/workload.hh"

namespace slipsim
{
namespace
{

class SorWorkload : public Workload
{
  public:
    explicit
    SorWorkload(const Options &o)
        : n(static_cast<size_t>(
              o.getInt("n", o.getBool("paper", false) ? 1024 : 128))),
          iters(static_cast<int>(o.getInt("iters", 4))),
          flop(static_cast<Tick>(o.getInt("flop", 4)))
    {}

    std::string name() const override { return "sor"; }

    std::string
    sizeDescription() const override
    {
        return std::to_string(n) + "x" + std::to_string(n) + ", " +
               std::to_string(iters) + " iterations";
    }

    void
    setup(ParallelRuntime &rt) override
    {
        grid.rows = grid.cols = n;
        grid.base = rt.alloc().alloc(grid.bytes(),
                                     Placement::Partitioned,
                                     rt.numTasks());
        bar = rt.makeBarrier();
        writeVec(rt.fmem(), grid.base, initial());
    }

    Coro<void>
    task(TaskContext &ctx) override
    {
        // Interior rows 1..n-2, block-partitioned.
        Span rows = partition(n - 2, ctx.tid(), ctx.numTasks());
        const size_t rlo = rows.lo + 1, rhi = rows.hi + 1;

        for (int it = 0; it < iters; ++it) {
            for (int color = 0; color < 2; ++color) {
                for (size_t r = rlo; r < rhi; ++r) {
                    size_t c0 = 1 + ((r + 1 + color) & 1);
                    for (size_t c = c0; c < n - 1; c += 2) {
                        double up =
                            co_await ctx.ld<double>(grid.at(r - 1, c));
                        double dn =
                            co_await ctx.ld<double>(grid.at(r + 1, c));
                        double lf =
                            co_await ctx.ld<double>(grid.at(r, c - 1));
                        double rg =
                            co_await ctx.ld<double>(grid.at(r, c + 1));
                        co_await ctx.st<double>(
                            grid.at(r, c), 0.25 * (up + dn + lf + rg));
                        co_await ctx.compute(flop);
                    }
                }
                co_await ctx.barrier(bar);
            }
        }
    }

    bool
    verify(FunctionalMemory &m) const override
    {
        std::vector<double> ref = initial();
        for (int it = 0; it < iters; ++it) {
            for (int color = 0; color < 2; ++color) {
                for (size_t r = 1; r < n - 1; ++r) {
                    size_t c0 = 1 + ((r + 1 + color) & 1);
                    for (size_t c = c0; c < n - 1; c += 2) {
                        ref[r * n + c] = 0.25 *
                            (ref[(r - 1) * n + c] +
                             ref[(r + 1) * n + c] +
                             ref[r * n + c - 1] + ref[r * n + c + 1]);
                    }
                }
            }
        }
        return maxAbsDiff(readVec(m, grid.base, n * n), ref) == 0.0;
    }

  private:
    std::vector<double>
    initial() const
    {
        std::vector<double> v(n * n, 0.0);
        for (size_t i = 0; i < n; ++i) {
            v[i] = 1.0;                      // top boundary
            v[(n - 1) * n + i] = 2.0;        // bottom
            v[i * n] = 0.5;                  // left
            v[i * n + n - 1] = 1.5;          // right
        }
        return v;
    }

    size_t n;
    int iters;
    Tick flop;
    SharedGrid2D grid;
    int bar = 0;
};

WorkloadRegistrar regSor("sor", [](const Options &o) {
    return std::make_unique<SorWorkload>(o);
});

} // namespace
} // namespace slipsim
