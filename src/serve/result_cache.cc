/**
 * @file
 * LRU result cache implementation.
 */

#include "serve/result_cache.hh"

namespace slipsim
{
namespace serve
{

bool
ResultCache::lookup(const std::string &key, std::string &value)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(key);
    if (it == index.end()) {
        ++misses;
        return false;
    }
    lru.splice(lru.begin(), lru, it->second);
    value = it->second->value;
    ++hits;
    return true;
}

void
ResultCache::insert(const std::string &key, std::string value)
{
    std::lock_guard<std::mutex> lock(mu);
    if (key.size() + value.size() > capacity) {
        ++oversized;
        return;
    }
    auto it = index.find(key);
    if (it != index.end()) {
        bytes -= entryBytes(*it->second);
        it->second->value = std::move(value);
        bytes += entryBytes(*it->second);
        lru.splice(lru.begin(), lru, it->second);
    } else {
        lru.push_front(Entry{key, std::move(value)});
        index[key] = lru.begin();
        bytes += entryBytes(lru.front());
        ++inserts;
    }
    evictToFit();
    bytesGauge.set(static_cast<double>(bytes));
    entriesGauge.set(static_cast<double>(lru.size()));
}

void
ResultCache::evictToFit()
{
    while (bytes > capacity && !lru.empty()) {
        bytes -= entryBytes(lru.back());
        index.erase(lru.back().key);
        lru.pop_back();
        ++evictions;
    }
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    lru.clear();
    index.clear();
    bytes = 0;
    bytesGauge.set(0);
    entriesGauge.set(0);
}

std::size_t
ResultCache::sizeBytes() const
{
    std::lock_guard<std::mutex> lock(mu);
    return bytes;
}

std::size_t
ResultCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lru.size();
}

void
ResultCache::registerStats(StatsScope scope) const
{
    scope.counter("hits", hits);
    scope.counter("misses", misses);
    scope.counter("evictions", evictions);
    scope.counter("inserts", inserts);
    scope.counter("oversized", oversized);
    scope.gauge("bytes", bytesGauge);
    scope.gauge("entries", entriesGauge);
}

} // namespace serve
} // namespace slipsim
