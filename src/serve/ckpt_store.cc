/**
 * @file
 * Checkpoint-session store implementation.
 */

#include "serve/ckpt_store.hh"

#include <utility>

#include "ckpt/warm_sweep.hh"
#include "core/cell.hh"
#include "ckpt/snapshot.hh"
#include "sim/logging.hh"

namespace slipsim
{
namespace serve
{

bool
CkptStore::runWarm(const SweepPoint &pt, const std::string &git_rev,
                   std::string &frag)
{
    if (!enabled() || !warmEligible(pt))
        return false;
    const std::string key =
        ckptStoreKey(renderPrefixCell(pt), pt.ckptAt, git_rev);

    // Find-or-insert under the store lock; spawn (slow) under only the
    // entry's own lock, so other prefixes stay available meanwhile.
    std::shared_ptr<Entry> e;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = index.find(key);
        if (it != index.end()) {
            lru.splice(lru.begin(), lru, it->second);
            e = *it->second;
            ++hits;
        } else {
            e = std::make_shared<Entry>();
            e->key = key;
            lru.push_front(e);
            index[key] = lru.begin();
            ++misses;
            while (lru.size() > capacity) {
                std::shared_ptr<Entry> victim = lru.back();
                index.erase(victim->key);
                lru.pop_back();
                ++evictions;
                // The victim's incubator is reaped when its last
                // in-flight user releases it.
            }
            sessionsGauge.set(static_cast<double>(lru.size()));
        }
    }

    std::lock_guard<std::mutex> slock(e->sessMu);
    if (!e->sess && !e->spawnFailed) {
        std::string err;
        e->sess = CkptSession::spawn(pt, &err);
        std::lock_guard<std::mutex> lock(mu);
        if (e->sess) {
            ++spawns;
        } else {
            e->spawnFailed = true;
            ++spawnFailures;
            warn("ckpt store: prefix spawn failed (%s); serving cold",
                 err.c_str());
        }
    }
    if (!e->sess)
        return false;

    try {
        frag = e->sess->forkRun(pt.tickLimit, pt.cfg.verify);
    } catch (const FatalError &) {
        if (e->sess->alive())
            throw;  // genuine in-cell fatal; a cold run would hit it too
        // Incubator died mid-protocol: poison the entry for anyone
        // already queued on it, drop it from the map, serve cold.
        e->spawnFailed = true;
        e->sess.reset();
        std::lock_guard<std::mutex> lock(mu);
        ++deaths;
        auto it = index.find(key);
        if (it != index.end() && *it->second == e) {
            lru.erase(it->second);
            index.erase(it);
            sessionsGauge.set(static_cast<double>(lru.size()));
        }
        return false;
    }

    std::lock_guard<std::mutex> lock(mu);
    ++forks;
    return true;
}

void
CkptStore::clear()
{
    // Detach under the store lock, shut sessions down outside it so a
    // slow incubator teardown cannot block concurrent lookups.
    std::list<std::shared_ptr<Entry>> dead;
    {
        std::lock_guard<std::mutex> lock(mu);
        dead.swap(lru);
        index.clear();
        sessionsGauge.set(0);
    }
    for (const std::shared_ptr<Entry> &e : dead) {
        std::lock_guard<std::mutex> slock(e->sessMu);
        e->spawnFailed = true;
        e->sess.reset();
    }
}

std::size_t
CkptStore::sessionCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lru.size();
}

void
CkptStore::registerStats(StatsScope scope) const
{
    scope.counter("hits", hits);
    scope.counter("misses", misses);
    scope.counter("spawns", spawns);
    scope.counter("spawnFailures", spawnFailures);
    scope.counter("evictions", evictions);
    scope.counter("forks", forks);
    scope.counter("deaths", deaths);
    scope.gauge("sessions", sessionsGauge);
}

} // namespace serve
} // namespace slipsim
