/**
 * @file
 * Byte-bounded LRU result cache for the simulation service.
 *
 * Maps a cache key (canonical-config hash + git revision + build
 * type, see core/config_hash.hh) to the memoized slipsim-stats-v1
 * point fragment for that cell.  Repeated cells — the common case
 * for golden regeneration and CI — are served from here without
 * simulating.
 *
 * Capacity is accounted in bytes (key + value sizes); inserting past
 * capacity evicts least-recently-used entries.  An entry larger than
 * the whole capacity is refused (counted, never cached).  All
 * operations are thread-safe; hit/miss/eviction counters register in
 * the server's stats registry under serve.cache.*.
 */

#ifndef SLIPSIM_SERVE_RESULT_CACHE_HH
#define SLIPSIM_SERVE_RESULT_CACHE_HH

#include <cstddef>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/stats_registry.hh"

namespace slipsim
{
namespace serve
{

class ResultCache
{
  public:
    explicit ResultCache(std::size_t capacity_bytes)
        : capacity(capacity_bytes)
    {
    }

    /**
     * Look @p key up; on a hit copies the value into @p value, marks
     * the entry most-recently used, and counts a hit.  Counts a miss
     * and returns false otherwise.
     */
    bool lookup(const std::string &key, std::string &value);

    /**
     * Insert (or refresh) @p key -> @p value, evicting LRU entries
     * until the byte budget holds.  Oversized values (larger than
     * the whole cache) are dropped and counted.
     */
    void insert(const std::string &key, std::string value);

    /** Drop every entry (counters are kept). */
    void clear();

    std::size_t sizeBytes() const;
    std::size_t entryCount() const;
    std::size_t capacityBytes() const { return capacity; }

    /** Register counters/gauges under @p scope (e.g. "serve.cache"). */
    void registerStats(StatsScope scope) const;

    /** Held while snapshotting the registry so counter reads are
     *  consistent with concurrent lookups. */
    std::mutex &statsMutex() const { return mu; }

  private:
    struct Entry
    {
        std::string key;
        std::string value;
    };

    std::size_t entryBytes(const Entry &e) const
    { return e.key.size() + e.value.size(); }

    void evictToFit();  // requires mu held

    const std::size_t capacity;
    mutable std::mutex mu;
    std::list<Entry> lru;  //!< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;

    Counter hits, misses, evictions, inserts, oversized;
    Gauge bytesGauge, entriesGauge;
};

} // namespace serve
} // namespace slipsim

#endif // SLIPSIM_SERVE_RESULT_CACHE_HH
