/**
 * @file
 * Frame codec and socket helpers.
 */

#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace slipsim
{
namespace serve
{

const char *
frameStatusName(FrameStatus s)
{
    switch (s) {
      case FrameStatus::Ok:
        return "ok";
      case FrameStatus::Eof:
        return "eof";
      case FrameStatus::TooBig:
        return "too-big";
      case FrameStatus::Truncated:
        return "truncated";
      case FrameStatus::Error:
        return "error";
      default:
        return "?";
    }
}

std::string
encodeFrame(std::string_view payload)
{
    std::string out;
    out.reserve(4 + payload.size());
    std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    out.push_back(static_cast<char>((n >> 24) & 0xff));
    out.push_back(static_cast<char>((n >> 16) & 0xff));
    out.push_back(static_cast<char>((n >> 8) & 0xff));
    out.push_back(static_cast<char>(n & 0xff));
    out.append(payload);
    return out;
}

FrameStatus
decodeFrame(std::string_view buf, std::size_t &off,
            std::string &payload, std::uint32_t maxBytes)
{
    if (off == buf.size())
        return FrameStatus::Eof;
    if (buf.size() - off < 4)
        return FrameStatus::Truncated;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(buf.data() + off);
    std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24) |
                      (static_cast<std::uint32_t>(p[1]) << 16) |
                      (static_cast<std::uint32_t>(p[2]) << 8) |
                      static_cast<std::uint32_t>(p[3]);
    if (n > maxBytes)
        return FrameStatus::TooBig;
    if (buf.size() - off - 4 < n)
        return FrameStatus::Truncated;
    payload.assign(buf.data() + off + 4, n);
    off += 4 + n;
    return FrameStatus::Ok;
}

namespace
{

bool
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** @return bytes read (== len), 0 on clean EOF at the first byte,
 *  -1 on error or mid-buffer EOF. */
ssize_t
readAll(int fd, void *data, std::size_t len)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < len) {
        ssize_t n = ::read(fd, p + got, len - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            return got == 0 ? 0 : -1;
        got += static_cast<std::size_t>(n);
    }
    return static_cast<ssize_t>(got);
}

} // namespace

bool
writeFrame(int fd, std::string_view payload)
{
    unsigned char hdr[4];
    std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    hdr[0] = static_cast<unsigned char>((n >> 24) & 0xff);
    hdr[1] = static_cast<unsigned char>((n >> 16) & 0xff);
    hdr[2] = static_cast<unsigned char>((n >> 8) & 0xff);
    hdr[3] = static_cast<unsigned char>(n & 0xff);
    return writeAll(fd, hdr, 4) &&
           writeAll(fd, payload.data(), payload.size());
}

FrameStatus
readFrame(int fd, std::string &payload, std::uint32_t maxBytes)
{
    unsigned char hdr[4];
    ssize_t r = readAll(fd, hdr, 4);
    if (r == 0)
        return FrameStatus::Eof;
    if (r < 0)
        return FrameStatus::Truncated;
    std::uint32_t n = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                      (static_cast<std::uint32_t>(hdr[1]) << 16) |
                      (static_cast<std::uint32_t>(hdr[2]) << 8) |
                      static_cast<std::uint32_t>(hdr[3]);
    if (n > maxBytes)
        return FrameStatus::TooBig;
    payload.resize(n);
    if (n > 0 && readAll(fd, payload.data(), n) <= 0)
        return FrameStatus::Truncated;
    return FrameStatus::Ok;
}

int
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, backlog) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        return -1;
    }
    return fd;
}

int
listenTcp(int port, int backlog)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, backlog) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        return -1;
    }
    return fd;
}

int
boundPort(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) <
        0) {
        return -1;
    }
    return ntohs(addr.sin_port);
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        return -1;
    }
    return fd;
}

int
connectTcp(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        int e = errno;
        ::close(fd);
        errno = e;
        return -1;
    }
    return fd;
}

} // namespace serve
} // namespace slipsim
