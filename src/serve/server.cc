/**
 * @file
 * Simulation-service server implementation.
 */

#include "serve/server.hh"

#include <algorithm>
#include <csignal>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/cell.hh"
#include "core/config_hash.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "ckpt/warm_sweep.hh"
#include "obs/json.hh"
#include "sample/sampled_run.hh"
#include "sim/logging.hh"

namespace slipsim
{
namespace serve
{

Server::Server(ServeConfig config)
    : cfg(std::move(config)), cache(cfg.cacheBytes),
      ckpts(cfg.ckptSessions)
{
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    // A client vanishing mid-stream must surface as a write error on
    // its connection, not kill the whole daemon.
    std::signal(SIGPIPE, SIG_IGN);

    if (!cfg.unixPath.empty()) {
        unixFd = listenUnix(cfg.unixPath);
        if (unixFd < 0) {
            fatal("cannot listen on unix socket '%s'",
                  cfg.unixPath.c_str());
        }
    }
    if (cfg.tcpPort >= 0) {
        tcpFd = listenTcp(cfg.tcpPort);
        if (tcpFd < 0)
            fatal("cannot listen on 127.0.0.1:%d", cfg.tcpPort);
        boundTcpPort = boundPort(tcpFd);
    }
    if (unixFd < 0 && tcpFd < 0)
        fatal("server needs a unix socket path or a TCP port");

    if (::pipe(stopPipe) != 0)
        fatal("cannot create stop pipe");

    sched = std::make_unique<FairScheduler>(cfg.workers);
    acceptThread = std::thread([this]() { acceptLoop(); });
}

void
Server::acceptLoop()
{
    while (true) {
        pollfd fds[3];
        int n = 0;
        fds[n++] = pollfd{stopPipe[0], POLLIN, 0};
        if (unixFd >= 0)
            fds[n++] = pollfd{unixFd, POLLIN, 0};
        if (tcpFd >= 0)
            fds[n++] = pollfd{tcpFd, POLLIN, 0};

        if (::poll(fds, static_cast<nfds_t>(n), -1) < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[0].revents)
            return;  // stop requested

        for (int i = 1; i < n; ++i) {
            if (!(fds[i].revents & POLLIN))
                continue;
            int cfd = ::accept(fds[i].fd, nullptr, nullptr);
            if (cfd < 0)
                continue;
            std::lock_guard<std::mutex> lock(connMu);
            if (stopping) {
                ::close(cfd);
                continue;
            }
            {
                std::lock_guard<std::mutex> clock(countMu);
                ++connectionsAccepted;
            }
            auto conn = std::make_unique<Connection>();
            conn->fd = cfd;
            Connection *raw = conn.get();
            conn->thread =
                std::thread([this, raw]() { connectionLoop(raw); });
            conns.push_back(std::move(conn));
        }
    }
}

void
Server::connectionLoop(Connection *conn)
{
    while (true) {
        std::string payload;
        FrameStatus st =
            readFrame(conn->fd, payload, cfg.maxFrameBytes);
        if (st == FrameStatus::TooBig) {
            sendError(conn, "frame too large");
            break;
        }
        if (st != FrameStatus::Ok)
            break;  // EOF / truncated / error: drop the connection
        if (!handleFrame(conn, payload))
            break;
    }
    ::shutdown(conn->fd, SHUT_RDWR);
}

bool
Server::handleFrame(Connection *conn, const std::string &payload)
{
    JsonValue req;
    try {
        req = parseJson(payload);
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(countMu);
        ++badRequests;
        // fall through to the error reply below
        return sendError(conn,
                         std::string("bad request JSON: ") + e.what());
    }
    if (!req.isObject() || !req.find("op") ||
        !req.at("op").isString()) {
        std::lock_guard<std::mutex> lock(countMu);
        ++badRequests;
        return sendError(conn, "request needs a string \"op\"");
    }

    const std::string &op = req.at("op").str;
    if (op == "ping") {
        handlePing(conn);
        return true;
    }
    if (op == "stats") {
        handleStats(conn);
        return true;
    }
    if (op == "run") {
        try {
            handleRun(conn, req);
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lock(countMu);
            ++badRequests;
            return sendError(conn, e.what());
        }
        return true;
    }
    if (op == "shutdown") {
        sendFrame(conn, "{\"ok\": true, \"draining\": true}");
        requestStop();
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(countMu);
        ++badRequests;
    }
    return sendError(conn, "unknown op '" + op + "'");
}

void
Server::handlePing(Connection *conn)
{
    std::ostringstream os;
    os << "{\"ok\": true, \"server\": \"slipsim\", \"protocol\": 1"
       << ", \"git_rev\": \"" << jsonEscape(cfg.gitRev)
       << "\", \"build_type\": \"" << jsonEscape(cfg.buildType)
       << "\", \"workers\": " << sched->workerCount() << "}";
    sendFrame(conn, os.str());
}

void
Server::handleStats(Connection *conn)
{
    std::ostringstream os;
    os << "{\"ok\": true, \"stats\": ";
    statsSnapshot().writeJson(os);
    os << "}";
    sendFrame(conn, os.str());
}

void
Server::handleRun(Connection *conn, const JsonValue &req)
{
    const JsonValue *cells = req.find("cells");
    if (!cells || !cells->isArray() || cells->arr.empty())
        fatal("run request needs a non-empty \"cells\" array");

    unsigned jobs_cap = 0;
    if (const JsonValue *j = req.find("jobs")) {
        if (!j->isNumber() || j->number < 0)
            fatal("run request: \"jobs\" must be a number >= 0");
        jobs_cap = static_cast<unsigned>(j->number);
    }
    if (cfg.maxJobsPerRequest > 0 &&
        (jobs_cap == 0 || jobs_cap > cfg.maxJobsPerRequest)) {
        jobs_cap = cfg.maxJobsPerRequest;
    }

    int sim_jobs = 0;
    if (const JsonValue *sj = req.find("sim-jobs")) {
        if (!sj->isNumber() || sj->number < 0)
            fatal("run request: \"sim-jobs\" must be a number >= 0");
        sim_jobs = static_cast<int>(sj->number);
    }
    if (cfg.maxSimJobs > 0 && sim_jobs > cfg.maxSimJobs)
        sim_jobs = cfg.maxSimJobs;

    // Validate, build, and hash every cell before running anything:
    // a bad cell rejects the whole request cheaply.
    const std::size_t n = cells->arr.size();
    std::vector<SweepPoint> pts(n);
    std::vector<std::string> keys(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (!cells->arr[i].isString())
            fatal("cell %zu is not a string", i);
        Options opts;
        try {
            opts = parseConfigLine(cells->arr[i].str);
            pts[i] = cellFromOptions(opts);
        } catch (const std::exception &e) {
            fatal("cell %zu: %s", i, e.what());
        }
        // The on-disk checkpoint protocol reads and writes the
        // *server's* filesystem; only the in-memory warm-start hint
        // (checkpoint-at alone) is served.
        if (!pts[i].ckptOut.empty() || !pts[i].restoreFrom.empty()) {
            fatal("cell %zu: checkpoint-out/restore-from are not "
                  "served; use checkpoint-at as a warm-start hint", i);
        }
        // Profiling simulates fully AND writes plan/checkpoint files
        // on the server's filesystem; only replay (read-only against
        // the configured sample-dir) is served.
        if (pts[i].sampleMode == SampleMode::Profile) {
            fatal("cell %zu: sample=profile is not served (it writes "
                  "plan files); profile offline and submit "
                  "sample=replay", i);
        }
        if (!pts[i].samplePlan.empty() || !pts[i].sampleDir.empty() ||
            !pts[i].sampleCkptOut.empty()) {
            fatal("cell %zu: sample-plan/sample-dir/sample-ckpt-out "
                  "name server-side paths and are not served; plans "
                  "are read from the server's sample-dir", i);
        }
        if (pts[i].sampleMode == SampleMode::Replay)
            pts[i].sampleDir = cfg.sampleDir;
        // The request-level sim-jobs only resizes the worker pool of
        // cells that already chose the parallel engine; it never
        // switches a cell's timing model (and so never its hash).
        if (pts[i].cfg.simJobs > 0 && sim_jobs > 0)
            pts[i].cfg.simJobs = sim_jobs;
        keys[i] = cacheKey(opts, cfg.gitRev, cfg.buildType);
    }

    {
        std::lock_guard<std::mutex> lock(countMu);
        ++requests;
        cellsRequested += n;
    }

    // Serve hits immediately, in submission order.
    std::vector<std::size_t> miss_idx;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::string frag;
        if (cache.lookup(keys[i], frag)) {
            ++hits;
            std::ostringstream os;
            os << "{\"cell\": " << i
               << ", \"cached\": true, \"point\": " << frag << "}";
            sendFrame(conn, os.str());
        } else {
            miss_idx.push_back(i);
        }
    }
    {
        std::lock_guard<std::mutex> lock(countMu);
        cellsFromCache += hits;
    }

    // Simulate the misses on the shared pool.
    std::mutex err_mu;
    std::size_t errors = 0;
    if (!miss_idx.empty()) {
        auto run_one = [&](std::size_t k) {
            std::size_t i = miss_idx[k];
            const SweepPoint &pt = pts[i];
            std::ostringstream os;
            try {
                // Warm path first: fork the suffix from a parked
                // prefix session (byte-identical to a cold run, so
                // either result may land in the cache).  Cold
                // otherwise, with the warm-start hint stripped — the
                // server never snapshots to disk on a cell's behalf.
                std::string frag;
                bool warm = false;
                if (pt.sampleMode == SampleMode::Replay) {
                    // Reconstructed from the plan, no simulation; its
                    // canonical form carries sample=, so the cache
                    // entry can never alias the full-fidelity cell.
                    frag = sweepPointJson(runCellSampled(pt));
                } else {
                    warm = ckpts.runWarm(pt, cfg.gitRev, frag);
                    if (!warm) {
                        ExperimentResult res = runExperiment(
                            pt.workload, pt.opts, pt.machine,
                            pt.cfg, pt.tickLimit);
                        frag = sweepPointJson(res);
                    }
                }
                cache.insert(keys[i], frag);
                {
                    std::lock_guard<std::mutex> lock(countMu);
                    ++cellsSimulated;
                }
                os << "{\"cell\": " << i << ", \"cached\": false"
                   << (warm ? ", \"warm\": true" : "")
                   << ", \"point\": " << frag << "}";
            } catch (const std::exception &e) {
                {
                    std::lock_guard<std::mutex> lock(err_mu);
                    ++errors;
                }
                std::lock_guard<std::mutex> lock(countMu);
                ++cellErrors;
                os.str("");
                os << "{\"cell\": " << i << ", \"error\": \""
                   << jsonEscape(e.what()) << "\"}";
            }
            sendFrame(conn, os.str());
        };
        FairScheduler::TicketPtr ticket =
            sched->submit(miss_idx.size(), jobs_cap, run_one);
        sched->wait(ticket);
    }

    std::ostringstream os;
    os << "{\"done\": true, \"cells\": " << n << ", \"hits\": " << hits
       << ", \"misses\": " << miss_idx.size()
       << ", \"errors\": " << errors << "}";
    sendFrame(conn, os.str());
}

bool
Server::sendFrame(Connection *conn, const std::string &payload)
{
    std::lock_guard<std::mutex> lock(conn->writeMu);
    return writeFrame(conn->fd, payload);
}

bool
Server::sendError(Connection *conn, const std::string &msg)
{
    return sendFrame(conn,
                     "{\"error\": \"" + jsonEscape(msg) + "\"}");
}

void
Server::waitShutdownRequested()
{
    std::unique_lock<std::mutex> lock(stopMu);
    stopCv.wait(lock, [&]() { return stopRequested; });
}

void
Server::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(stopMu);
        if (stopRequested)
            return;
        stopRequested = true;
    }
    stopCv.notify_all();
    if (stopPipe[1] >= 0) {
        char b = 'x';
        [[maybe_unused]] ssize_t r = ::write(stopPipe[1], &b, 1);
    }
}

void
Server::stop()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(stopMu);
        if (stopped)
            return;
        stopped = true;
    }

    if (acceptThread.joinable())
        acceptThread.join();
    if (unixFd >= 0) {
        ::close(unixFd);
        unixFd = -1;
    }
    if (tcpFd >= 0) {
        ::close(tcpFd);
        tcpFd = -1;
    }
    if (!cfg.unixPath.empty())
        ::unlink(cfg.unixPath.c_str());

    // Unblock idle connection readers; handlers mid-request finish
    // streaming their results first (SHUT_RD leaves writes intact).
    {
        std::lock_guard<std::mutex> lock(connMu);
        stopping = true;
        for (auto &c : conns)
            ::shutdown(c->fd, SHUT_RD);
    }
    for (auto &c : conns) {
        if (c->thread.joinable())
            c->thread.join();
        if (c->fd >= 0)
            ::close(c->fd);
    }
    conns.clear();

    if (sched)
        sched->drainAndStop();
    ckpts.clear();

    for (int &fd : stopPipe) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

StatsSnapshot
Server::statsSnapshot() const
{
    StatsRegistry reg;
    StatsScope root(reg, "serve");
    {
        std::lock_guard<std::mutex> lock(countMu);
        root.counter("requests", requests);
        root.counter("cellsRequested", cellsRequested);
        root.counter("cellsFromCache", cellsFromCache);
        root.counter("cellsSimulated", cellsSimulated);
        root.counter("cellErrors", cellErrors);
        root.counter("badRequests", badRequests);
        root.counter("connections", connectionsAccepted);
    }
    cache.registerStats(root.sub("cache"));
    ckpts.registerStats(root.sub("ckpt"));
    if (sched)
        sched->registerStats(root.sub("sched"));

    // Freeze under every component's lock so counters are coherent.
    std::lock_guard<std::mutex> l1(countMu);
    std::lock_guard<std::mutex> l2(cache.statsMutex());
    std::lock_guard<std::mutex> l3(ckpts.statsMutex());
    if (sched) {
        std::lock_guard<std::mutex> l4(sched->statsMutex());
        return reg.snapshot();
    }
    return reg.snapshot();
}

} // namespace serve
} // namespace slipsim
