/**
 * @file
 * The simulation service: a long-running daemon wrapping the sweep
 * engine behind the frame protocol, with fair scheduling and a
 * config-hash result cache.
 *
 * One Server owns:
 *  - up to two listeners (Unix-domain socket and/or loopback TCP);
 *  - one connection thread per client, reading request frames;
 *  - a FairScheduler worker pool shared by every client, sized by
 *    ServeConfig::workers;
 *  - a ResultCache memoizing each cell's slipsim-stats-v1 point
 *    fragment under canonical-config-hash + git-rev + build-type.
 *
 * Request handling ("run" op): every cell is validated and hashed up
 * front; cache hits stream back immediately (submission order,
 * "cached": true) without touching the scheduler, misses are
 * simulated on the shared pool (completion order) and inserted into
 * the cache, and a final {"done": ...} frame summarizes the request.
 * Because cached fragments are the exact bytes sweepPointJson()
 * produced, a document reassembled from any mix of hits and misses
 * is byte-identical to an offline bench run of the same cells.
 *
 * The Server object is usable in-process (tests construct one and
 * connect over a socketpair-equivalent Unix path); tools/slipsim_server
 * is a thin main() around it.
 */

#ifndef SLIPSIM_SERVE_SERVER_HH
#define SLIPSIM_SERVE_SERVER_HH

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats_registry.hh"
#include "serve/ckpt_store.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/scheduler.hh"

namespace slipsim
{
namespace serve
{

struct ServeConfig
{
    /** Unix-domain socket path ("" = no Unix listener). */
    std::string unixPath;

    /** Loopback TCP port (-1 = no TCP listener, 0 = ephemeral). */
    int tcpPort = -1;

    /** Worker pool size (0 = hardware concurrency). */
    unsigned workers = 0;

    /** Result-cache budget in bytes. */
    std::size_t cacheBytes = 256u << 20;

    /** Server-wide ceiling on a request's in-flight cells (its
     *  `jobs` field is clamped to this; 0 = no ceiling). */
    unsigned maxJobsPerRequest = 0;

    /** Ceiling on a request's `sim-jobs` (parallel-engine worker
     *  count per cell; 0 = no ceiling).  Only applies to cells that
     *  selected engine=parallel — the server never switches a cell's
     *  timing model. */
    int maxSimJobs = 0;

    /** Per-frame payload cap for this server's connections. */
    std::uint32_t maxFrameBytes = defaultMaxFrameBytes;

    /** Parked checkpoint sessions to keep (0 disables warm starts).
     *  Cells carrying a checkpoint-at warm-start hint fork their
     *  suffix from a stored prefix incubator instead of simulating
     *  from tick 0; see serve/ckpt_store.hh. */
    unsigned ckptSessions = 0;

    /** Directory of sample plans served to sample=replay cells
     *  (DESIGN.md §14).  Plans are profiled offline (the server never
     *  writes them); a replay cell whose plan is missing or stale
     *  fails like any other cell error. */
    std::string sampleDir = "sample-plans";

    /** Build identity baked into every cache key. */
    std::string gitRev = "unknown";
    std::string buildType = "unknown";
};

class Server
{
  public:
    explicit Server(ServeConfig cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind listeners and spawn the accept thread + worker pool.
     *  fatal() if no listener could be bound. */
    void start();

    /** Block until a client's "shutdown" op (or requestStop()). */
    void waitShutdownRequested();

    /** Flag the server to stop; returns immediately. */
    void requestStop();

    /** Graceful teardown: stop accepting, let in-flight requests
     *  finish streaming, drain the pool, join every thread.
     *  Idempotent. */
    void stop();

    /** Actual TCP port (after start(), when tcpPort was 0). */
    int tcpPort() const { return boundTcpPort; }

    /** Consistent snapshot of every serve.* metric. */
    StatsSnapshot statsSnapshot() const;

    const ServeConfig &config() const { return cfg; }

  private:
    struct Connection
    {
        int fd = -1;
        std::mutex writeMu;
        std::thread thread;
    };

    void acceptLoop();
    void connectionLoop(Connection *conn);

    /** Dispatch one parsed request frame; @return false to close. */
    bool handleFrame(Connection *conn, const std::string &payload);

    void handleRun(Connection *conn, const struct JsonValue &req);
    void handlePing(Connection *conn);
    void handleStats(Connection *conn);

    bool sendFrame(Connection *conn, const std::string &payload);
    bool sendError(Connection *conn, const std::string &msg);

    ServeConfig cfg;
    ResultCache cache;
    CkptStore ckpts;
    std::unique_ptr<FairScheduler> sched;

    int unixFd = -1;
    int tcpFd = -1;
    int boundTcpPort = -1;
    int stopPipe[2] = {-1, -1};

    std::thread acceptThread;

    std::mutex connMu;
    std::vector<std::unique_ptr<Connection>> conns;
    bool stopping = false;

    std::mutex stopMu;
    std::condition_variable stopCv;
    bool stopRequested = false;
    bool stopped = false;

    mutable std::mutex countMu;
    Counter requests, cellsRequested, cellsFromCache, cellsSimulated,
        cellErrors, badRequests, connectionsAccepted;
};

} // namespace serve
} // namespace slipsim

#endif // SLIPSIM_SERVE_SERVER_HH
