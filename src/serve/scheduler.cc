/**
 * @file
 * Fair round-robin scheduler implementation.
 */

#include "serve/scheduler.hh"

#include "core/sweep.hh"
#include "sim/logging.hh"

namespace slipsim
{
namespace serve
{

FairScheduler::FairScheduler(unsigned workers, bool record_dispatches)
    : recordDispatches(record_dispatches)
{
    unsigned n = resolveJobs(workers);
    pool.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        pool.emplace_back([this]() { workerLoop(); });
}

FairScheduler::~FairScheduler()
{
    drainAndStop();
}

FairScheduler::TicketPtr
FairScheduler::submit(std::size_t num_cells, unsigned cap,
                      std::function<void(std::size_t)> run)
{
    auto t = std::make_shared<Ticket>();
    t->run = std::move(run);
    t->cap = cap;
    t->total = num_cells;
    for (std::size_t i = 0; i < num_cells; ++i)
        t->pending.push_back(i);

    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping)
            fatal("scheduler: submit after drainAndStop");
        t->id = nextTicketId++;
        active.push_back(t);
        maxActive.raise(static_cast<double>(active.size()));
    }
    if (num_cells == 0) {
        std::lock_guard<std::mutex> lock(mu);
        removeTicket(t);
        t->doneCv.notify_all();
        return t;
    }
    workCv.notify_all();
    return t;
}

void
FairScheduler::wait(const TicketPtr &t)
{
    std::unique_lock<std::mutex> lock(mu);
    t->doneCv.wait(lock, [&]() { return t->done == t->total; });
}

void
FairScheduler::drainAndStop()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping && pool.empty())
            return;
        stopping = true;
    }
    workCv.notify_all();
    for (auto &th : pool) {
        if (th.joinable())
            th.join();
    }
    pool.clear();
}

void
FairScheduler::removeTicket(const TicketPtr &t)
{
    // Keep the cursor pointing at the same *next* ticket: erasing an
    // entry before it would otherwise shift the rotation and hand the
    // following ticket a double turn (or skip one).
    std::size_t idx = 0;
    for (auto it = active.begin(); it != active.end(); ++it, ++idx) {
        if (*it == t) {
            active.erase(it);
            if (idx < cursor)
                --cursor;
            if (cursor >= active.size())
                cursor = 0;
            return;
        }
    }
}

FairScheduler::TicketPtr
FairScheduler::pickRunnable(std::size_t &cell)
{
    if (active.empty())
        return nullptr;
    // Walk the ring once, starting at the cursor.
    std::size_t n = active.size();
    if (cursor >= n)
        cursor = 0;
    auto it = active.begin();
    std::advance(it, cursor);
    for (std::size_t step = 0; step < n; ++step) {
        TicketPtr &t = *it;
        if (!t->pending.empty() &&
            (t->cap == 0 || t->inflight < t->cap)) {
            cell = t->pending.front();
            t->pending.pop_front();
            ++t->inflight;
            maxInflight.raise(static_cast<double>(t->inflight));
            // Advance the cursor past this ticket so the next
            // dispatch considers the following one first.
            cursor = (cursor + step + 1) % n;
            return t;
        }
        ++it;
        if (it == active.end())
            it = active.begin();
    }
    return nullptr;
}

void
FairScheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
        std::size_t cell = 0;
        TicketPtr t = pickRunnable(cell);
        if (!t) {
            if (stopping)
                return;
            workCv.wait(lock);
            continue;
        }
        if (recordDispatches)
            dispatches.push_back(t->id);
        lock.unlock();

        t->run(cell);

        lock.lock();
        ++cellsRun;
        --t->inflight;
        ++t->done;
        if (t->done == t->total) {
            ++ticketsDone;
            removeTicket(t);
            t->doneCv.notify_all();
        }
        // A freed cap slot or finished ticket may unblock peers.
        workCv.notify_all();
    }
}

std::vector<std::uint64_t>
FairScheduler::dispatchLog() const
{
    std::lock_guard<std::mutex> lock(mu);
    return dispatches;
}

void
FairScheduler::registerStats(StatsScope scope) const
{
    scope.counter("cellsRun", cellsRun);
    scope.counter("ticketsDone", ticketsDone);
    scope.gauge("maxActiveRequests", maxActive);
    scope.gauge("maxInflightPerRequest", maxInflight);
}

} // namespace serve
} // namespace slipsim
