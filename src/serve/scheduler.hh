/**
 * @file
 * Fair round-robin cell scheduler over a shared worker pool.
 *
 * Every connected client's request becomes a *ticket*: an ordered set
 * of cell indices plus a per-request cap on how many of its cells may
 * run at once (the request's `jobs` field).  A fixed pool of worker
 * threads serves all tickets; each dispatch takes the next cell from
 * the next ticket in round-robin order that has pending work and
 * spare in-flight budget.  Two consequences:
 *
 *  - fairness: a 48-cell sweep and a 1-cell probe submitted together
 *    interleave — the probe does not wait behind the sweep;
 *  - isolation: a request's cap bounds its worker share, so one
 *    client cannot monopolize the pool even alone in the queue with
 *    a large request.
 *
 * The run function is supplied per ticket and is called on worker
 * threads; it must not throw (the server wraps simulation errors into
 * per-cell error frames).  submit() returns a Ticket handle the
 * caller waits on; the scheduler never owns result data.
 */

#ifndef SLIPSIM_SERVE_SCHEDULER_HH
#define SLIPSIM_SERVE_SCHEDULER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/stats_registry.hh"

namespace slipsim
{
namespace serve
{

class FairScheduler
{
  public:
    /** A submitted request; wait() blocks until every cell ran. */
    struct Ticket
    {
        std::deque<std::size_t> pending;
        std::function<void(std::size_t)> run;
        unsigned cap = 0;       //!< max in-flight cells (0 = no cap)
        unsigned inflight = 0;
        std::size_t total = 0;
        std::size_t done = 0;
        std::uint64_t id = 0;
        std::condition_variable doneCv;
    };
    using TicketPtr = std::shared_ptr<Ticket>;

    /** @param workers pool size; 0 selects hardware concurrency.
     *  @param record_dispatches keep a dispatch log (tests only). */
    explicit FairScheduler(unsigned workers,
                           bool record_dispatches = false);
    ~FairScheduler();

    FairScheduler(const FairScheduler &) = delete;
    FairScheduler &operator=(const FairScheduler &) = delete;

    /**
     * Enqueue a request of @p num_cells cells.  @p run is invoked as
     * run(i) for each i in [0, num_cells) from worker threads, at
     * most @p cap concurrently.  Returns immediately.
     */
    TicketPtr submit(std::size_t num_cells, unsigned cap,
                     std::function<void(std::size_t)> run);

    /** Block until every cell of @p t has completed. */
    void wait(const TicketPtr &t);

    /** Stop accepting work, finish in-flight + pending cells of
     *  already-submitted tickets, join the pool. */
    void drainAndStop();

    unsigned workerCount() const
    { return static_cast<unsigned>(pool.size()); }

    /** Ticket-id sequence of every dispatch, in dispatch order (only
     *  recorded when the constructor asked for it). */
    std::vector<std::uint64_t> dispatchLog() const;

    /** Register counters under @p scope (e.g. "serve.sched"). */
    void registerStats(StatsScope scope) const;

    /** See ResultCache::statsMutex(). */
    std::mutex &statsMutex() const { return mu; }

  private:
    void workerLoop();

    /** Pick the next runnable ticket round-robin; requires mu held.
     *  Returns nullptr when nothing is runnable. */
    TicketPtr pickRunnable(std::size_t &cell);

    /** Erase @p t from the ring, keeping the cursor on the same next
     *  ticket; requires mu held. */
    void removeTicket(const TicketPtr &t);

    mutable std::mutex mu;
    std::condition_variable workCv;
    std::list<TicketPtr> active;  //!< round-robin ring, FIFO arrival
    std::size_t cursor = 0;       //!< ring position of the next pick
    bool stopping = false;
    std::uint64_t nextTicketId = 1;

    std::vector<std::thread> pool;

    bool recordDispatches;
    std::vector<std::uint64_t> dispatches;

    Counter cellsRun, ticketsDone;
    Gauge maxActive, maxInflight;
};

} // namespace serve
} // namespace slipsim

#endif // SLIPSIM_SERVE_SCHEDULER_HH
