/**
 * @file
 * Wire protocol for the simulation service: length-prefixed JSON
 * frames over a Unix-domain or loopback-TCP stream socket.
 *
 * A frame is a 4-byte big-endian payload length followed by that many
 * bytes of UTF-8 JSON.  Both directions use the same framing; each
 * payload is one JSON object.  Client->server objects carry an "op"
 * member ("ping", "run", "stats", "shutdown"); server->client objects
 * are per-cell results, a final completion object, or {"error": ...}.
 * The full request/response vocabulary is documented in DESIGN.md
 * §10.
 *
 * Framing is deliberately dumb: no compression, no multiplexing, no
 * partial frames.  A reader either gets a whole payload, a clean EOF
 * at a frame boundary, or a hard error (oversized length prefix,
 * truncated stream) that ends the connection — malformed input can
 * never desynchronize the stream into misinterpreting bytes.
 */

#ifndef SLIPSIM_SERVE_PROTOCOL_HH
#define SLIPSIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace slipsim
{
namespace serve
{

/** Default cap on one frame's payload (a full fig01-size stats
 *  document is under 1 MB; 64 MB leaves room for paper-size sweeps). */
constexpr std::uint32_t defaultMaxFrameBytes = 64u << 20;

/** Outcome of reading one frame. */
enum class FrameStatus
{
    Ok,         //!< payload delivered
    Eof,        //!< clean end of stream at a frame boundary
    TooBig,     //!< length prefix exceeds the reader's cap
    Truncated,  //!< stream ended mid-prefix or mid-payload
    Error,      //!< I/O error
};

const char *frameStatusName(FrameStatus s);

/** Serialize @p payload as one frame (prefix + bytes). */
std::string encodeFrame(std::string_view payload);

/**
 * Decode one frame from @p buf starting at @p off.  On Ok, @p off
 * advances past the frame and @p payload holds the bytes.  Eof when
 * @p off is exactly at the buffer end; Truncated when a partial frame
 * remains.  Never consumes bytes on a non-Ok return.
 */
FrameStatus decodeFrame(std::string_view buf, std::size_t &off,
                        std::string &payload,
                        std::uint32_t maxBytes = defaultMaxFrameBytes);

/** Write one frame to @p fd (loops over short writes; EINTR-safe).
 *  @return false on any write failure. */
bool writeFrame(int fd, std::string_view payload);

/** Read one frame from @p fd (blocking; EINTR-safe). */
FrameStatus readFrame(int fd, std::string &payload,
                      std::uint32_t maxBytes = defaultMaxFrameBytes);

// --- socket helpers (all return -1 on failure, with errno set) ---------

/** Bind + listen on a Unix-domain socket at @p path (unlinks any
 *  stale socket file first). */
int listenUnix(const std::string &path, int backlog = 16);

/** Bind + listen on loopback TCP; @p port 0 picks an ephemeral port
 *  (read it back with boundPort()). */
int listenTcp(int port, int backlog = 16);

/** Port a listening TCP socket is bound to. */
int boundPort(int fd);

/** Connect to a Unix-domain socket. */
int connectUnix(const std::string &path);

/** Connect to a loopback TCP port. */
int connectTcp(int port);

} // namespace serve
} // namespace slipsim

#endif // SLIPSIM_SERVE_PROTOCOL_HH
