/**
 * @file
 * Checkpoint-session store for the simulation service.
 *
 * Sits alongside the result cache: where the result cache memoizes
 * *finished* cells, the checkpoint store keeps *parked prefixes* — live
 * CkptSession incubators (DESIGN.md §13) keyed by
 * ckptStoreKey(canonical-prefix-config, checkpoint-tick, git-rev).  A
 * warm-eligible cell (checkpoint-at set as a prefix-sharing hint) that
 * misses the result cache forks its suffix from a stored session
 * instead of simulating from tick 0; the first such cell pays the
 * prefix once, every later cell sharing the prefix pays only its
 * suffix.
 *
 * Capacity is counted in sessions (each incubator is a whole parked
 * simulator process); inserting past capacity evicts the
 * least-recently-used session, whose incubator is shut down and
 * reaped.  A request for an evicted key simply respawns the prefix —
 * eviction costs time, never correctness.  Fork children produce
 * byte-identical output to straight-through runs, so warm results
 * share the result cache with cold ones under the same key.
 *
 * All operations are thread-safe.  Forks on one session serialize on
 * that session's incubator; distinct sessions fork concurrently.
 * Counters register under serve.ckpt.*.
 */

#ifndef SLIPSIM_SERVE_CKPT_STORE_HH
#define SLIPSIM_SERVE_CKPT_STORE_HH

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ckpt/ckpt_session.hh"
#include "core/sweep.hh"
#include "obs/stats_registry.hh"

namespace slipsim
{
namespace serve
{

class CkptStore
{
  public:
    /** @p max_sessions parked incubators (0 disables the store). */
    explicit CkptStore(unsigned max_sessions) : capacity(max_sessions) {}

    bool enabled() const { return capacity > 0; }

    /**
     * Run @p pt warm: fork its suffix from the parked prefix session
     * for (renderPrefixCell(pt), pt.ckptAt, @p git_rev), spawning the
     * session first if the store has no live one.  On success @p frag
     * receives the cell's sweepPointJson() fragment and true is
     * returned.  Returns false — caller runs the cell cold — when the
     * store is disabled, @p pt is not warm-eligible, or the spawn
     * failed.  A fatal *inside* the forked child (one a
     * straight-through run would also hit) propagates; a dead
     * incubator is dropped and reported as a cold fallback instead.
     */
    bool runWarm(const SweepPoint &pt, const std::string &git_rev,
                 std::string &frag);

    /** Shut down and reap every parked session. */
    void clear();

    std::size_t sessionCount() const;
    unsigned capacitySessions() const { return capacity; }

    /** Register counters/gauges under @p scope (e.g. "serve.ckpt"). */
    void registerStats(StatsScope scope) const;

    /** Held while snapshotting the registry so counter reads are
     *  consistent with concurrent forks. */
    std::mutex &statsMutex() const { return mu; }

  private:
    /** One parked prefix; sessMu serializes its incubator protocol. */
    struct Entry
    {
        std::string key;
        std::mutex sessMu;
        std::unique_ptr<CkptSession> sess;  //!< null while spawning
        bool spawnFailed = false;
    };

    const unsigned capacity;
    mutable std::mutex mu;
    std::list<std::shared_ptr<Entry>> lru;  //!< front = most recent
    std::unordered_map<std::string,
                       std::list<std::shared_ptr<Entry>>::iterator>
        index;

    Counter hits, misses, spawns, spawnFailures, evictions, forks,
        deaths;
    Gauge sessionsGauge;
};

} // namespace serve
} // namespace slipsim

#endif // SLIPSIM_SERVE_CKPT_STORE_HH
