/**
 * @file
 * Seeded random-traffic fuzzer for the coherence fabric.
 *
 * A fuzz run drives N nodes with a pseudo-random stream of R/A-stream
 * reads, stores, exclusive prefetches, and self-invalidation drains
 * over a small, hot address pool, with the ProtocolChecker attached
 * and value tracking on.  Execution is *op-list driven*: the seed
 * expands to a concrete std::vector<FuzzOp> up front, and a run is a
 * pure function of (config, op list).  That makes failures shrinkable
 * — ops can be deleted and the remainder replayed bit-identically —
 * and replayable from a JSON trace with no RNG state involved.
 *
 * Typical flow (bench/fuzz_coherence.cc):
 *   ops  = generateFuzzOps(cfg, seed)
 *   rep  = runFuzzOps(cfg, ops)            // fresh System every run
 *   if (rep.failed)
 *       ops = shrinkFuzzOps(cfg, ops)      // greedy delta-debugging
 *       writeFuzzTrace(file, cfg, seed, ops, rep)
 */

#ifndef SLIPSIM_CHECK_TRAFFIC_GEN_HH
#define SLIPSIM_CHECK_TRAFFIC_GEN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mem/directory.hh"
#include "sim/types.hh"

namespace slipsim
{

/** One fuzzer operation. */
enum class FuzzOpKind : std::uint8_t
{
    RLoad = 0,     //!< R-stream GETS + value verification
    RStore,        //!< R-stream GETX + value commit
    ALoad,         //!< A-stream coherent GETS
    ATransLoad,    //!< A-stream transparent GETS (divergence tracked)
    APrefEx,       //!< A-stream exclusive prefetch (fire-and-forget)
    SiDrain,       //!< drain the node's self-invalidation queue
    Advance,       //!< let simulated time pass
    NumKinds,
};

const char *fuzzOpName(FuzzOpKind k);

/** One scheduled operation of an op-list-driven fuzz run. */
struct FuzzOp
{
    FuzzOpKind kind = FuzzOpKind::RLoad;
    NodeId node = 0;
    std::uint16_t lineIdx = 0;  //!< index into the run's line pool
    std::uint16_t delay = 0;    //!< ticks to advance before issuing
};

/** Parameters of one fuzz run (also serialized into the trace). */
struct FuzzConfig
{
    int nodes = 4;            //!< CMP count
    int lines = 32;           //!< address-pool size
    int ops = 1500;           //!< ops per generated seed
    int maxOutstanding = 24;  //!< issue throttle
    std::uint32_t l2KB = 8;   //!< tiny L2 so evictions are common
    bool transparentLoads = true;
    bool selfInvalidation = true;
    /**
     * Intra-run parallel engine: 0 drives the single global event
     * queue (sequential, bit-exact legacy behavior); N >= 1 drives
     * per-node queues under the epoch executor with N workers.  Ops
     * partition by node (each node replays its own sub-list in order,
     * with a per-node issue window), so for a given config the run is
     * byte-identical for every N >= 1.
     */
    int simJobs = 0;
    /** Coherence-protocol backend driving the run. */
    ProtocolKind protocol = ProtocolKind::MSI;
    /**
     * Remap every RStore to a per-line fixed writer node
     * ((lineIdx % lines) % nodes) before execution.  With a single
     * writer per line, same-node same-line stores commit in issue
     * order (MSHR waiter FIFO), so the per-line committed value
     * stream and the final functional-memory image are identical
     * across engines *and* protocol backends — the property the
     * differential harness asserts.
     */
    bool singleWriter = false;
    /** Test-only fault injection, applied to every home. */
    DirFaults faults;
};

/** Outcome of one fuzz run. */
struct FuzzReport
{
    bool failed = false;
    std::uint64_t violations = 0;
    std::string firstViolation;
    std::uint64_t transactions = 0;
    std::uint64_t aDivergences = 0;
    int issued = 0;
    int completed = 0;
    /** Per pool-line committed store values, in commit order
     *  (canonical across engines; cross-protocol-comparable when the
     *  run used cfg.singleWriter). */
    std::vector<std::vector<std::uint64_t>> valueStreams;
    /** Final functional-memory word of each pool line, read at
     *  quiescence. */
    std::vector<std::uint64_t> finalValues;
};

/** Expand @p seed into a concrete op list for @p cfg. */
std::vector<FuzzOp> generateFuzzOps(const FuzzConfig &cfg,
                                    std::uint64_t seed);

/** Execute an op list on a fresh System with the checker attached. */
FuzzReport runFuzzOps(const FuzzConfig &cfg,
                      const std::vector<FuzzOp> &ops);

/** generateFuzzOps + runFuzzOps. */
FuzzReport runFuzzSeed(const FuzzConfig &cfg, std::uint64_t seed);

/**
 * Greedy delta-debugging shrink: repeatedly delete chunks of ops
 * (halving the chunk size down to single ops) while the run still
 * fails.  At most @p max_runs replays.  Returns the smallest failing
 * op list found (the input if it does not fail at all).
 */
std::vector<FuzzOp> shrinkFuzzOps(const FuzzConfig &cfg,
                                  std::vector<FuzzOp> ops,
                                  std::size_t max_runs = 400);

/** Dump a replayable failure trace as JSON. */
void writeFuzzTrace(std::ostream &os, const FuzzConfig &cfg,
                    std::uint64_t seed, const std::vector<FuzzOp> &ops,
                    const FuzzReport &rep);

/**
 * Parse a trace produced by writeFuzzTrace.  @return true on success
 * with @p cfg / @p seed / @p ops filled in.
 */
bool readFuzzTrace(std::istream &is, FuzzConfig &cfg,
                   std::uint64_t &seed, std::vector<FuzzOp> &ops);

} // namespace slipsim

#endif // SLIPSIM_CHECK_TRAFFIC_GEN_HH
