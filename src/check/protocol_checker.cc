/**
 * @file
 * ProtocolChecker implementation.
 */

#include "check/protocol_checker.hh"

#include <sstream>

#include "mem/directory.hh"
#include "sim/logging.hh"

namespace slipsim
{

namespace
{

const char *
stateName(DirEntry::St s)
{
    switch (s) {
      case DirEntry::St::Idle:
        return "Idle";
      case DirEntry::St::Shared:
        return "Shared";
      case DirEntry::St::Excl:
        return "Excl";
      case DirEntry::St::Owned:
        return "Owned";
    }
    return "?";
}

} // namespace

ProtocolChecker::ProtocolChecker(MemorySystem &mem_sys, bool track_values)
    : ms(mem_sys), trackValues(track_values)
{
    l1Lines.resize(static_cast<std::size_t>(ms.numNodes()) * 2);
    ms.setObserver(this);
}

ProtocolChecker::~ProtocolChecker()
{
    if (ms.observer() == this)
        ms.setObserver(nullptr);
}

void
ProtocolChecker::record(Addr line_addr, NodeId node, const char *kind,
                        std::string detail)
{
    ++violationCount;
    if (found.size() >= maxRecorded)
        return;
    Violation v;
    v.tick = ms.eventq().now();
    v.lineAddr = line_addr;
    v.node = node;
    v.kind = kind;
    v.detail = std::move(detail);
    found.push_back(std::move(v));
}

std::string
ProtocolChecker::firstViolation() const
{
    if (found.empty())
        return "";
    const Violation &v = found.front();
    std::ostringstream os;
    os << v.kind << " @tick " << v.tick << " line 0x" << std::hex
       << v.lineAddr << std::dec << " node " << v.node << ": "
       << v.detail;
    return os.str();
}

void
ProtocolChecker::sweepLine(Addr line_addr)
{
    ++sweepsRun;
    const DirEntry *e = ms.homeOf(line_addr).probe(line_addr);
    const int nodes = ms.numNodes();

    // I5: entry well-formedness.
    const bool moesi = ms.protocolKind() == ProtocolKind::MOESI;
    if (e) {
        const bool has_owner_state = e->state == DirEntry::St::Excl ||
                                     e->state == DirEntry::St::Owned;
        if (e->state == DirEntry::St::Excl && e->owner == invalidNode) {
            record(line_addr, invalidNode, "excl-without-owner",
                   "home entry Excl but owner unset");
        }
        if (e->state == DirEntry::St::Owned && e->owner == invalidNode) {
            record(line_addr, invalidNode, "owned-without-owner",
                   "home entry Owned but owner unset");
        }
        if (!has_owner_state && e->owner != invalidNode) {
            record(line_addr, e->owner, "owner-outside-excl",
                   std::string("home entry ") + stateName(e->state) +
                       " still names an owner");
        }
        if (!moesi && e->state == DirEntry::St::Owned) {
            record(line_addr, e->owner, "owned-under-msi",
                   "Owned home entry under the msi backend");
        }
    }

    int owners = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        const bool owned_m = ms.node(n).ownedInL2(line_addr);
        const bool owned_o = ms.node(n).heldOwnedInL2(line_addr);
        const bool owner_local = owned_m || owned_o;
        const bool present_r =
            ms.node(n).presentFor(line_addr, StreamKind::RStream);
        const bool present_a =
            ms.node(n).presentFor(line_addr, StreamKind::AStream);
        const bool transparent_copy = present_a && !present_r;

        if (owner_local) {
            ++owners;
            // An O->M upgrade granted at the home leaves the local
            // line Owned until the exclusive fill lands; exempt, like
            // every other fill-in-flight asymmetry (I2's converse).
            const bool upgrade_in_flight = owned_o && e &&
                e->state == DirEntry::St::Excl && e->owner == n &&
                ms.node(n).missOutstanding(line_addr);
            if (upgrade_in_flight) {
                // I6 exemption.
            } else if (e && e->state == DirEntry::St::Owned &&
                       e->owner != n) {
                // I7: every non-owner copy under an Owned entry must
                // be clean.
                record(line_addr, n, "dirty-under-owned",
                       std::string("non-owner holds the line ") +
                           (owned_m ? "Excl" : "Owned") +
                           " under an Owned home entry naming node " +
                           std::to_string(e->owner));
            } else if (!e ||
                       e->state != (owned_m ? DirEntry::St::Excl
                                            : DirEntry::St::Owned)) {
                // I1/I6: the home must agree about the owner.
                record(line_addr, n, "owner-not-recorded",
                       std::string("L2 holds the line ") +
                           (owned_m ? "Excl" : "Owned") +
                           " but home entry is " +
                           (e ? stateName(e->state) : "absent"));
            } else if (e->owner != n) {
                record(line_addr, n, "owner-mismatch",
                       "home names node " + std::to_string(e->owner) +
                           " as owner");
            }
        }

        if (present_r && !owner_local) {
            // I2: every coherent copy is known to the home.
            if (!e || e->state == DirEntry::St::Idle) {
                record(line_addr, n, "hidden-copy",
                       "L2 holds a coherent copy of a line the home "
                       "thinks nobody caches");
            } else if (e->state == DirEntry::St::Shared &&
                       !(e->sharers & (std::uint64_t(1) << n))) {
                record(line_addr, n, "hidden-sharer",
                       "L2 holds a Shared copy missing from the "
                       "sharer list");
            } else if (e->state == DirEntry::St::Excl && e->owner != n) {
                record(line_addr, n, "stale-copy",
                       "L2 still holds a copy after exclusivity moved "
                       "to node " + std::to_string(e->owner) +
                       " (lost invalidation)");
            } else if (e->state == DirEntry::St::Owned &&
                       e->owner != n &&
                       !(e->sharers & (std::uint64_t(1) << n))) {
                // I7: clean copies under an Owned entry must be on
                // the sharer list.
                record(line_addr, n, "hidden-sharer",
                       "L2 holds a Shared copy missing from the "
                       "sharer list (Owned entry)");
            }
        }

        if (transparent_copy && e &&
            !ms.node(n).missOutstanding(line_addr)) {
            // I4: transparent copies stay outside the coherent state.
            // A node upgrading its transparent copy is exempt while the
            // coherent fill is in flight: the home records the new
            // sharer/owner at transaction time, but the old transparent
            // line survives locally until the fill replaces it.
            if (e->state == DirEntry::St::Shared &&
                (e->sharers & (std::uint64_t(1) << n))) {
                record(line_addr, n, "transparent-sharer",
                       "transparent copy recorded in the sharer list");
            }
            if (e->state == DirEntry::St::Excl && e->owner == n) {
                record(line_addr, n, "transparent-owner",
                       "transparent copy recorded as exclusive owner");
            }
            if (e->state == DirEntry::St::Owned) {
                if (e->sharers & (std::uint64_t(1) << n)) {
                    record(line_addr, n, "transparent-sharer",
                           "transparent copy recorded in the sharer "
                           "list (Owned entry)");
                }
                if (e->owner == n) {
                    record(line_addr, n, "transparent-owner",
                           "transparent copy recorded as the Owned "
                           "entry's owner");
                }
            }
        }
    }

    // I1/I6: global single-writer / owner-uniqueness.
    if (owners > 1) {
        record(line_addr, invalidNode, "multiple-owners",
               std::to_string(owners) + " L2s hold the line dirty");
    }
}

void
ProtocolChecker::onDirTransaction(const MemReq &req,
                                  const ReplyInfo &info,
                                  const DirEntry &e, Tick)
{
    std::lock_guard<std::mutex> lk(mu);
    ++transactionsObserved;
    linesSeen.insert(req.lineAddr);

    // I8 (forward-not-fetch), against the pre-transaction mirror: a
    // coherent reply for a line somebody held dirty must come from the
    // owner (or the raced-eviction memory fallback), never from a
    // plain authoritative memory fetch.  Transparent replies are the
    // documented exception: they *want* the stale memory image.
    auto mit = homeMirror.find(req.lineAddr);
    if (mit != homeMirror.end() && !info.transparent &&
        (mit->second.state == DirEntry::St::Excl ||
         mit->second.state == DirEntry::St::Owned) &&
        info.dataSrc == DataSource::Memory) {
        record(req.lineAddr, req.node, "forward-not-fetch",
               std::string("reply sourced from memory while home was ") +
                   stateName(mit->second.state) + " (owner node " +
                   std::to_string(mit->second.owner) + ")");
    }
    homeMirror[req.lineAddr] = HomeMirror{e.state, e.owner};

    sweepLine(req.lineAddr);
}

void
ProtocolChecker::onDirNote(DirNote kind, NodeId node, Addr line_addr,
                           const DirEntry *e)
{
    std::lock_guard<std::mutex> lk(mu);
    linesSeen.insert(line_addr);
    if (e)
        homeMirror[line_addr] = HomeMirror{e->state, e->owner};
    if (kind == DirNote::Writeback && trackValues) {
        // The writeback must carry the last committed value; since
        // functional memory is the single value copy, this catches any
        // path that let a store bypass the commit protocol.
        auto it = shadow.find(line_addr);
        if (it != shadow.end()) {
            std::uint64_t mem_val =
                ms.functional().read<std::uint64_t>(line_addr);
            if (mem_val != it->second.value) {
                std::ostringstream os;
                os << "writeback value 0x" << std::hex << mem_val
                   << " != last committed 0x" << it->second.value
                   << std::dec << " (writer node "
                   << it->second.writer << ")";
                record(line_addr, node, "writeback-value", os.str());
            }
        }
    }
}

void
ProtocolChecker::onL2(L2Event ev, NodeId node, Addr line_addr, bool,
                      bool transparent)
{
    std::lock_guard<std::mutex> lk(mu);
    linesSeen.insert(line_addr);
    switch (ev) {
      case L2Event::Fill:
        if (transparent) {
            auto it = shadow.find(line_addr);
            transparentVersion[nodeLineKey(node, line_addr)] =
                it == shadow.end() ? 0 : it->second.version;
        }
        break;
      case L2Event::Evict:
      case L2Event::ExternalInvalidate:
      case L2Event::SiInvalidate:
        // I3: the L2 must have back-invalidated its L1s first.
        for (int slot = 0; slot < 2; ++slot) {
            const auto &set = l1Lines[static_cast<std::size_t>(node) * 2 +
                                      slot];
            if (set.count(line_addr)) {
                record(line_addr, node, "l1-after-l2-drop",
                       "L1 slot " + std::to_string(slot) +
                           " still holds a line its L2 dropped");
            }
        }
        break;
      case L2Event::Downgrade:
      case L2Event::SiDowngrade:
        break;
    }
}

void
ProtocolChecker::onL1(L1Event ev, NodeId node, int slot, Addr line_addr)
{
    std::lock_guard<std::mutex> lk(mu);
    auto &set = l1Lines[static_cast<std::size_t>(node) * 2 + slot];
    switch (ev) {
      case L1Event::Insert:
        // I3: inclusion at fill time.
        if (!ms.node(node).presentFor(line_addr, StreamKind::AStream)) {
            record(line_addr, node, "l1-fill-outside-l2",
                   "L1 slot " + std::to_string(slot) +
                       " filled a line its L2 does not hold");
        }
        set.insert(line_addr);
        break;
      case L1Event::Evict:
      case L1Event::Invalidate:
        set.erase(line_addr);
        break;
    }
}

void
ProtocolChecker::commitStore(NodeId node, Addr line_addr,
                             std::uint64_t value)
{
    std::lock_guard<std::mutex> lk(mu);
    ++storesCommitted;
    Shadow &s = shadow[line_addr];
    s.value = value;
    ++s.version;
    s.writer = node;
    s.tick = ms.eventq().now();
}

void
ProtocolChecker::verifyRLoad(NodeId node, Addr line_addr)
{
    if (!trackValues)
        return;
    std::lock_guard<std::mutex> lk(mu);
    ++rLoadsVerified;
    auto it = shadow.find(line_addr);
    const std::uint64_t expected =
        it == shadow.end() ? 0 : it->second.value;
    const std::uint64_t actual =
        ms.functional().read<std::uint64_t>(line_addr);
    if (actual != expected) {
        std::ostringstream os;
        os << "R-stream load observed 0x" << std::hex << actual
           << " but the latest committed value is 0x" << expected
           << std::dec;
        record(line_addr, node, "r-load-value", os.str());
    }
}

void
ProtocolChecker::noteALoad(NodeId node, Addr line_addr)
{
    std::lock_guard<std::mutex> lk(mu);
    const bool present_r =
        ms.node(node).presentFor(line_addr, StreamKind::RStream);
    const bool present_a =
        ms.node(node).presentFor(line_addr, StreamKind::AStream);
    if (!present_a || present_r)
        return;  // coherent (or no) copy: nothing to diverge from
    auto tv = transparentVersion.find(nodeLineKey(node, line_addr));
    auto sh = shadow.find(line_addr);
    const std::uint64_t fill_ver =
        tv == transparentVersion.end() ? 0 : tv->second;
    const std::uint64_t cur_ver =
        sh == shadow.end() ? 0 : sh->second.version;
    if (fill_ver < cur_ver)
        ++aDivergences;  // reported, never asserted (paper §3.2)
}

void
ProtocolChecker::finalSweep()
{
    for (Addr la : linesSeen)
        sweepLine(la);
    // I3, globally: every mirrored L1 line is still L2-resident.
    for (std::size_t idx = 0; idx < l1Lines.size(); ++idx) {
        const NodeId node = static_cast<NodeId>(idx / 2);
        for (Addr la : l1Lines[idx]) {
            if (!ms.node(node).presentFor(la, StreamKind::AStream)) {
                record(la, node, "l1-inclusion",
                       "L1 slot " + std::to_string(idx % 2) +
                           " holds a line absent from its L2");
            }
        }
    }
}

void
ProtocolChecker::dumpStats(StatSet &out) const
{
    out.add("check.transactions",
            static_cast<double>(transactionsObserved));
    out.add("check.sweeps", static_cast<double>(sweepsRun));
    out.add("check.violations", static_cast<double>(violationCount));
    out.add("check.aDivergences", static_cast<double>(aDivergences));
    out.add("check.storesCommitted",
            static_cast<double>(storesCommitted));
    out.add("check.rLoadsVerified",
            static_cast<double>(rLoadsVerified));
}

} // namespace slipsim
