/**
 * @file
 * Runtime protocol verification for the invalidate-directory fabric.
 *
 * ProtocolChecker attaches to a MemorySystem through the passive
 * CoherenceObserver hooks (mem/observer.hh) and re-validates the
 * global coherence invariants after every directory transaction:
 *
 *   I1  single-writer: at most one L2 holds a line Exclusive, and the
 *       home's owner field names exactly that node.
 *   I2  sharer-list soundness: every L2 holding a line coherently is
 *       recorded by the home (no hidden copies, no stale copies
 *       surviving an invalidation).  The converse is *not* required:
 *       a recorded sharer's fill may still be in flight.
 *   I3  L1 inclusion: every L1-resident line is L2-resident, and L2
 *       evictions/invalidations back-invalidate both L1s first.
 *   I4  transparent copies are never Exclusive and never appear in
 *       the sharer list.
 *   I5  directory-entry well-formedness (Excl/Owned have an owner,
 *       Shared does not; Owned never appears under the msi backend).
 *
 * The MOESI backend (mem/protocol_moesi.cc) adds three invariants:
 *
 *   I6  owner-uniqueness: at most one L2 holds a line dirty (Excl or
 *       Owned), and an Excl/Owned home entry names exactly that node.
 *       An O->M upgrade whose exclusive fill is still in flight is
 *       exempt (the local line stays Owned until the fill lands).
 *   I7  O-implies-sharers-clean: under an Owned home entry every
 *       non-owner coherent copy is clean (locally Shared and on the
 *       sharer list); a non-owner dirty copy is a violation.
 *   I8  forward-not-fetch: a non-transparent reply for a line whose
 *       home entry was Excl/Owned must not be sourced from plain
 *       memory — the owner forwards (DataSource::Owner) or the
 *       documented raced fallback applies (DataSource::MemoryRaced).
 *       Tracked through a home-entry mirror updated at every
 *       transaction and note.
 *
 * With value tracking enabled (the fuzz harness drives this), the
 * checker also keeps a per-line shadow of the last committed store and
 * verifies that R-stream loads observe exactly the latest
 * sequentially-consistent value and that writebacks carry it, while
 * A-stream (transparent-load) divergence is only counted — the paper's
 * A-stream is allowed to read stale data, so divergence is a report,
 * never an assertion.
 *
 * Violations are recorded, not thrown: a fuzz run completes and then
 * asks `clean()`, which keeps shrinking deterministic.
 */

#ifndef SLIPSIM_CHECK_PROTOCOL_CHECKER_HH
#define SLIPSIM_CHECK_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/memory_system.hh"
#include "mem/observer.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace slipsim
{

/** Observer that asserts directory-protocol invariants as they evolve. */
class ProtocolChecker : public CoherenceObserver
{
  public:
    /** One detected invariant violation. */
    struct Violation
    {
        Tick tick = 0;
        Addr lineAddr = 0;
        NodeId node = invalidNode;
        std::string kind;    //!< stable machine-readable tag
        std::string detail;  //!< human-readable context
    };

    /** Recorded violations are capped; the count keeps increasing. */
    static constexpr std::size_t maxRecorded = 100;

    /**
     * Attach to @p mem_sys (replacing any previous observer).
     * @param track_values enable the shadow value checker; only the
     *        fuzz harness drives stores through commitStore(), so this
     *        must stay off when a real workload owns functional memory.
     */
    explicit ProtocolChecker(MemorySystem &mem_sys,
                             bool track_values = false);

    ~ProtocolChecker() override;

    ProtocolChecker(const ProtocolChecker &) = delete;
    ProtocolChecker &operator=(const ProtocolChecker &) = delete;

    // --- CoherenceObserver ------------------------------------------------

    void onDirTransaction(const MemReq &req, const ReplyInfo &info,
                          const DirEntry &e, Tick reply_at) override;
    void onDirNote(DirNote kind, NodeId node, Addr line_addr,
                   const DirEntry *e) override;
    void onL2(L2Event ev, NodeId node, Addr line_addr, bool exclusive,
              bool transparent) override;
    void onL1(L1Event ev, NodeId node, int slot, Addr line_addr) override;

    // --- value interface (driven by the traffic generator) ----------------

    /** An R-stream store to @p line_addr committed @p value (the caller
     *  has already written functional memory). */
    void commitStore(NodeId node, Addr line_addr, std::uint64_t value);

    /** An R-stream load completed; it must observe the latest committed
     *  value (sequential consistency at line granularity). */
    void verifyRLoad(NodeId node, Addr line_addr);

    /** An A-stream load completed; stale (transparent) values are
     *  counted as divergence, never asserted. */
    void noteALoad(NodeId node, Addr line_addr);

    // --- sweeps & results -------------------------------------------------

    /** Re-validate every invariant for one line, now. */
    void sweepLine(Addr line_addr);

    /** Validate every line ever observed plus full L1 inclusion; call
     *  at quiescence. */
    void finalSweep();

    bool clean() const { return violationCount == 0; }

    /** Total violations detected (recorded list is capped). */
    std::uint64_t totalViolations() const { return violationCount; }

    const std::vector<Violation> &violations() const { return found; }

    /** One-line description of the first violation ("" when clean). */
    std::string firstViolation() const;

    void dumpStats(StatSet &out) const;

    // Counters.
    std::uint64_t transactionsObserved = 0;
    std::uint64_t sweepsRun = 0;
    std::uint64_t aDivergences = 0;
    std::uint64_t storesCommitted = 0;
    std::uint64_t rLoadsVerified = 0;

  private:
    /** Shadow of the last committed store to a line. */
    struct Shadow
    {
        std::uint64_t value = 0;
        std::uint64_t version = 0;
        NodeId writer = invalidNode;
        Tick tick = 0;
    };

    void record(Addr line_addr, NodeId node, const char *kind,
                std::string detail);

    /** (node, line) key; line addresses are 64-byte aligned, so the
     *  low bits are free for the node id (numCmps <= 64). */
    static std::uint64_t
    nodeLineKey(NodeId node, Addr line_addr)
    {
        return line_addr | static_cast<std::uint64_t>(node);
    }

    /** Pre-transaction home state, for I8 (the observer hook only
     *  sees the post-transaction entry). */
    struct HomeMirror
    {
        DirEntry::St state = DirEntry::St::Idle;
        NodeId owner = invalidNode;
    };

    MemorySystem &ms;
    bool trackValues;

    /** Serializes the observer hooks: under the parallel engine they
     *  fire concurrently from worker threads.  sweepLine()/finalSweep()
     *  are quiescence-time calls and take it through the hooks only. */
    std::mutex mu;

    std::vector<Violation> found;
    std::uint64_t violationCount = 0;

    std::unordered_set<Addr> linesSeen;
    std::unordered_map<Addr, HomeMirror> homeMirror;
    std::unordered_map<Addr, Shadow> shadow;
    /** Shadow version captured when a transparent fill landed. */
    std::unordered_map<std::uint64_t, std::uint64_t> transparentVersion;
    /** L1 contents mirror, indexed node*2+slot. */
    std::vector<std::unordered_set<Addr>> l1Lines;
};

} // namespace slipsim

#endif // SLIPSIM_CHECK_PROTOCOL_CHECKER_HH
