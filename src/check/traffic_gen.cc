/**
 * @file
 * Random-traffic fuzzer implementation: seed expansion, op-list
 * execution against a fresh System, greedy shrinking, and the JSON
 * trace format.
 */

#include "check/traffic_gen.hh"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "check/protocol_checker.hh"
#include "core/system.hh"
#include "mem/protocol.hh"
#include "sim/logging.hh"
#include "sim/parallel_exec.hh"
#include "sim/random.hh"

namespace slipsim
{

const char *
fuzzOpName(FuzzOpKind k)
{
    switch (k) {
      case FuzzOpKind::RLoad:
        return "RLoad";
      case FuzzOpKind::RStore:
        return "RStore";
      case FuzzOpKind::ALoad:
        return "ALoad";
      case FuzzOpKind::ATransLoad:
        return "ATransLoad";
      case FuzzOpKind::APrefEx:
        return "APrefEx";
      case FuzzOpKind::SiDrain:
        return "SiDrain";
      case FuzzOpKind::Advance:
        return "Advance";
      default:
        return "?";
    }
}

std::vector<FuzzOp>
generateFuzzOps(const FuzzConfig &cfg, std::uint64_t seed)
{
    Rng rng(seed ^ 0x51195119fu);
    std::vector<FuzzOp> ops;
    ops.reserve(static_cast<std::size_t>(cfg.ops));

    const std::uint64_t hot =
        std::min<std::uint64_t>(8, static_cast<std::uint64_t>(cfg.lines));

    for (int i = 0; i < cfg.ops; ++i) {
        FuzzOp op;
        // Weighted kind mix: mostly loads/stores, with enough
        // transparent and SI traffic to exercise the slipstream paths.
        std::uint64_t roll = rng.below(100);
        if (roll < 28)
            op.kind = FuzzOpKind::RLoad;
        else if (roll < 52)
            op.kind = FuzzOpKind::RStore;
        else if (roll < 62)
            op.kind = FuzzOpKind::ALoad;
        else if (roll < 76)
            op.kind = FuzzOpKind::ATransLoad;
        else if (roll < 84)
            op.kind = FuzzOpKind::APrefEx;
        else if (roll < 90)
            op.kind = FuzzOpKind::SiDrain;
        else
            op.kind = FuzzOpKind::Advance;

        op.node = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(cfg.nodes)));
        // A hot subset keeps the nodes fighting over the same lines.
        op.lineIdx = static_cast<std::uint16_t>(
            rng.below(100) < 70
                ? rng.below(hot)
                : rng.below(static_cast<std::uint64_t>(cfg.lines)));
        op.delay = static_cast<std::uint16_t>(
            op.kind == FuzzOpKind::Advance ? 64 + rng.below(1024)
                                           : rng.below(48));
        ops.push_back(op);
    }
    return ops;
}

namespace
{

/** Ops that issue a blocking access (completion callback + throttle). */
bool
fuzzOpBlocks(FuzzOpKind k)
{
    return k == FuzzOpKind::RLoad || k == FuzzOpKind::RStore ||
           k == FuzzOpKind::ALoad || k == FuzzOpKind::ATransLoad;
}

/** Translate an access op into a MemReq; false for non-access ops. */
bool
buildFuzzReq(const FuzzConfig &cfg, const FuzzOp &op, Addr la,
             NodeId node, MemReq &req, int &slot)
{
    req.lineAddr = la;
    req.node = node;
    slot = 0;
    switch (op.kind) {
      case FuzzOpKind::RLoad:
        req.type = ReqType::Read;
        req.stream = StreamKind::RStream;
        return true;
      case FuzzOpKind::RStore:
        req.type = ReqType::Excl;
        req.stream = StreamKind::RStream;
        req.inCS = (op.delay & 1) != 0;
        return true;
      case FuzzOpKind::ALoad:
        req.type = ReqType::Read;
        req.stream = StreamKind::AStream;
        slot = 1;
        return true;
      case FuzzOpKind::ATransLoad:
        req.type = ReqType::Read;
        req.stream = StreamKind::AStream;
        req.wantTransparent = cfg.transparentLoads;
        slot = 1;
        return true;
      case FuzzOpKind::APrefEx:
        req.type = ReqType::PrefEx;
        req.stream = StreamKind::AStream;
        slot = 1;
        return true;
      default:
        return false;
    }
}

/** Deterministic per-op store value, keyed by the op's index in the
 *  original (pre-partition) list so both engines commit the same
 *  sequence per line. */
std::uint64_t
fuzzStoreValue(std::size_t global_idx, NodeId node)
{
    return (static_cast<std::uint64_t>(global_idx + 1) << 16) ^
           static_cast<std::uint64_t>(node + 1);
}

/**
 * Parallel-engine fuzz driver: ops partition by node and each node
 * replays its sub-list in order on its own event queue — a pump event
 * per node issues the next op after the op's declared delay, stalling
 * (and retrying) while the node's issue window is full.  The epoch
 * executor runs the queues; completions land node-locally, so every
 * counter below has a single writer and the coordinator only reads
 * them at epoch barriers.
 */
void
runFuzzParallel(const FuzzConfig &cfg, const std::vector<FuzzOp> &ops,
                System &sys, ProtocolChecker &checker,
                const std::vector<Addr> &pool, FuzzReport &rep)
{
    MemorySystem &msys = sys.memory();

    struct NodeDrv
    {
        std::vector<std::pair<FuzzOp, std::size_t>> ops;
        std::size_t next = 0;
        int outstanding = 0;
        int issued = 0;
        int completed = 0;
    };
    std::vector<NodeDrv> drv(static_cast<std::size_t>(cfg.nodes));
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const NodeId n = static_cast<NodeId>(ops[i].node % cfg.nodes);
        drv[static_cast<std::size_t>(n)].ops.emplace_back(ops[i], i);
    }
    const int window = std::max(1, cfg.maxOutstanding / cfg.nodes);

    std::vector<std::function<void()>> pumps(
            static_cast<std::size_t>(cfg.nodes));
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        pumps[static_cast<std::size_t>(n)] = [&, n]() {
            NodeDrv &d = drv[static_cast<std::size_t>(n)];
            EventQueue &q = msys.eventq(n);
            while (d.next < d.ops.size()) {
                const FuzzOp &op = d.ops[d.next].first;
                const std::size_t gidx = d.ops[d.next].second;
                if (fuzzOpBlocks(op.kind) && d.outstanding >= window) {
                    q.scheduleIn(256, pumps[static_cast<std::size_t>(n)]);
                    return;
                }
                ++d.next;

                const Addr la = pool[op.lineIdx % pool.size()];
                MemReq req;
                int slot = 0;
                if (op.kind == FuzzOpKind::SiDrain) {
                    msys.node(n).drainSiQueue();
                } else if (buildFuzzReq(cfg, op, la, n, req, slot)) {
                    if (req.type == ReqType::PrefEx) {
                        msys.node(n).access(req, slot, nullptr);
                    } else {
                        ++d.issued;
                        ++d.outstanding;
                        const std::uint64_t value =
                            fuzzStoreValue(gidx, n);
                        const FuzzOpKind kind = op.kind;
                        const std::size_t li =
                            op.lineIdx % pool.size();
                        msys.node(n).access(req, slot,
                                [&d, &msys, &checker, &sys, &rep, kind,
                                 n, la, li, value]() {
                                    --d.outstanding;
                                    ++d.completed;
                                    // Value commits and checks mutate
                                    // cross-node checker state; ride
                                    // the channel so they apply at the
                                    // epoch barrier in canonical
                                    // (tick, node, seq) order — the
                                    // counts stay byte-identical for
                                    // every sim-jobs value.
                                    Tick now = msys.eventq(n).now();
                                    msys.channel(n).send(now, now,
                                            MsgKind::SyncOp,
                                            [&checker, &sys, &rep, kind,
                                             n, la, li, value](
                                                    Tick, Tick) -> Tick {
                                        switch (kind) {
                                          case FuzzOpKind::RLoad:
                                            checker.verifyRLoad(n, la);
                                            break;
                                          case FuzzOpKind::RStore:
                                            sys.functional()
                                                .write<std::uint64_t>(
                                                        la, value);
                                            checker.commitStore(n, la,
                                                                value);
                                            rep.valueStreams[li]
                                                .push_back(value);
                                            break;
                                          case FuzzOpKind::ALoad:
                                          case FuzzOpKind::ATransLoad:
                                            checker.noteALoad(n, la);
                                            break;
                                          default:
                                            break;
                                        }
                                        return 0;
                                    });
                                });
                    }
                }

                // Spacing to the next op (its declared pre-issue
                // delay); zero-delay ops chain inline at this tick.
                if (d.next < d.ops.size()) {
                    const Tick delay = d.ops[d.next].first.delay;
                    if (delay) {
                        q.scheduleIn(delay,
                                     pumps[static_cast<std::size_t>(n)]);
                        return;
                    }
                }
            }
        };
    }
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        NodeDrv &d = drv[static_cast<std::size_t>(n)];
        if (!d.ops.empty()) {
            msys.eventq(n).scheduleIn(
                    d.ops.front().first.delay,
                    pumps[static_cast<std::size_t>(n)]);
        }
    }

    std::vector<EventQueue *> qs;
    std::vector<Channel *> chs;
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        qs.push_back(&msys.eventq(n));
        chs.push_back(&msys.channel(n));
    }
    const Tick epoch = std::min<Tick>(ParallelExecutor::defaultEpochLen,
                                      msys.lookahead());
    ParallelExecutor exec(std::move(qs), std::move(chs), epoch,
                          cfg.simJobs);
    exec.run(
            [&]() {
                // Done only at full quiescence: every op issued, every
                // blocking access completed, every queue drained (so
                // fire-and-forget prefetch fills have landed, exactly
                // like the sequential driver's final eq.run()).
                for (NodeId n = 0; n < cfg.nodes; ++n) {
                    const NodeDrv &d =
                        drv[static_cast<std::size_t>(n)];
                    if (d.next < d.ops.size() || d.outstanding > 0)
                        return false;
                    if (!msys.eventq(n).empty())
                        return false;
                }
                return true;
            },
            [&]() {
                std::ostringstream os;
                for (NodeId n = 0; n < cfg.nodes; ++n) {
                    const NodeDrv &d =
                        drv[static_cast<std::size_t>(n)];
                    os << "node" << n << ": op " << d.next << "/"
                       << d.ops.size() << " outstanding="
                       << d.outstanding << "; ";
                }
                return os.str();
            });

    for (const NodeDrv &d : drv) {
        rep.issued += d.issued;
        rep.completed += d.completed;
    }
}

/**
 * Sequential driver: issues the op list inline against the single
 * global event queue, interleaving eq.run() slices for delays and
 * throttling.  This is the legacy engine, bit-exact with every run
 * recorded before the parallel engine existed.
 */
void
runFuzzSequential(const FuzzConfig &cfg, const std::vector<FuzzOp> &ops,
                  System &sys, ProtocolChecker &checker,
                  const std::vector<Addr> &pool, FuzzReport &rep)
{
    EventQueue &eq = sys.eventq();
    MemorySystem &msys = sys.memory();
    int outstanding = 0;

    for (std::size_t idx = 0; idx < ops.size(); ++idx) {
        const FuzzOp &op = ops[idx];
        const Addr la = pool[op.lineIdx % pool.size()];
        const NodeId node =
            static_cast<NodeId>(op.node % cfg.nodes);

        if (op.delay)
            eq.run(eq.now() + op.delay);

        if (op.kind == FuzzOpKind::Advance)
            continue;
        if (op.kind == FuzzOpKind::SiDrain) {
            msys.node(node).drainSiQueue();
            continue;
        }

        // Throttle: never keep more than maxOutstanding blocking ops
        // in flight (mirrors a finite per-node request window).
        int guard = 0;
        while (outstanding >= cfg.maxOutstanding && !eq.empty() &&
               guard++ < 100000) {
            eq.run(eq.now() + 256);
        }

        MemReq req;
        int slot = 0;
        if (!buildFuzzReq(cfg, op, la, node, req, slot))
            continue;

        if (req.type == ReqType::PrefEx) {
            msys.node(node).access(req, slot, nullptr);
            continue;
        }

        ++rep.issued;
        ++outstanding;
        // Deterministic per-op value so a shrunk replay recommits the
        // identical sequence.
        const std::uint64_t value = fuzzStoreValue(idx, node);
        const FuzzOpKind kind = op.kind;
        const std::size_t li = op.lineIdx % pool.size();
        msys.node(node).access(req, slot,
                [&rep, &outstanding, &checker, &sys, kind, node, la,
                 li, value]() {
                    --outstanding;
                    ++rep.completed;
                    switch (kind) {
                      case FuzzOpKind::RLoad:
                        checker.verifyRLoad(node, la);
                        break;
                      case FuzzOpKind::RStore:
                        sys.functional().write<std::uint64_t>(la, value);
                        checker.commitStore(node, la, value);
                        rep.valueStreams[li].push_back(value);
                        break;
                      case FuzzOpKind::ALoad:
                      case FuzzOpKind::ATransLoad:
                        checker.noteALoad(node, la);
                        break;
                      default:
                        break;
                    }
                });
    }

    // Quiesce.
    eq.run();
}

} // namespace

FuzzReport
runFuzzOps(const FuzzConfig &cfg, const std::vector<FuzzOp> &ops)
{
    SLIPSIM_ASSERT(cfg.nodes >= 2 && cfg.nodes <= 64,
            "fuzz node count must be in [2,64]");
    SLIPSIM_ASSERT(cfg.lines >= 1 && cfg.lines <= 0xffff,
            "fuzz line pool must fit a uint16 index");

    MachineParams mp;
    mp.protocol = cfg.protocol;
    mp.numCmps = cfg.nodes;
    mp.l2Bytes = cfg.l2KB * 1024;  // tiny: evictions are the point
    mp.l2Assoc = 2;
    mp.l1Bytes = 1024;

    RunConfig rc;
    rc.mode = Mode::Slipstream;  // enables every protocol feature
    rc.features.transparentLoads = cfg.transparentLoads;
    rc.features.selfInvalidation = cfg.selfInvalidation;
    rc.simJobs = cfg.simJobs;

    System sys(mp, rc);
    MemorySystem &msys = sys.memory();
    ProtocolChecker checker(msys, /*track_values=*/true);

    for (NodeId n = 0; n < cfg.nodes; ++n)
        msys.dir(n).faults = cfg.faults;

    // Pool: one line per page (homes round-robin across nodes), the
    // set index stepping through 16 sets so lines both conflict in the
    // tiny L2 and spread across homes.
    std::vector<Addr> pool;
    pool.reserve(static_cast<std::size_t>(cfg.lines));
    Addr base = sys.allocator().alloc(
        static_cast<std::size_t>(cfg.lines) * FunctionalMemory::pageBytes,
        Placement::Interleaved);
    for (int i = 0; i < cfg.lines; ++i) {
        pool.push_back(base +
                       static_cast<Addr>(i) * FunctionalMemory::pageBytes +
                       static_cast<Addr>(i % 16) * lineBytes);
    }

    FuzzReport rep;
    rep.valueStreams.assign(pool.size(), {});

    // Single-writer mode pins every store to a per-line fixed node
    // *before* engine partitioning, so both engines (and both
    // protocols) see the identical remapped list.
    const std::vector<FuzzOp> *run_ops = &ops;
    std::vector<FuzzOp> remapped;
    if (cfg.singleWriter) {
        remapped = ops;
        for (FuzzOp &op : remapped) {
            if (op.kind == FuzzOpKind::RStore) {
                op.node = static_cast<NodeId>(
                    (op.lineIdx % cfg.lines) % cfg.nodes);
            }
        }
        run_ops = &remapped;
    }

    if (cfg.simJobs > 0)
        runFuzzParallel(cfg, *run_ops, sys, checker, pool, rep);
    else
        runFuzzSequential(cfg, *run_ops, sys, checker, pool, rep);

    // Global end-of-run sweep at quiescence.
    checker.finalSweep();

    rep.finalValues.reserve(pool.size());
    for (Addr la : pool)
        rep.finalValues.push_back(sys.functional().read<std::uint64_t>(la));

    rep.transactions = checker.transactionsObserved;
    rep.aDivergences = checker.aDivergences;
    rep.violations = checker.totalViolations();
    rep.firstViolation = checker.firstViolation();
    if (rep.completed != rep.issued) {
        rep.failed = true;
        if (rep.firstViolation.empty()) {
            rep.firstViolation =
                "lost-completion: " +
                std::to_string(rep.issued - rep.completed) +
                " blocking accesses never completed";
        }
        ++rep.violations;
    }
    if (!checker.clean())
        rep.failed = true;
    return rep;
}

FuzzReport
runFuzzSeed(const FuzzConfig &cfg, std::uint64_t seed)
{
    return runFuzzOps(cfg, generateFuzzOps(cfg, seed));
}

std::vector<FuzzOp>
shrinkFuzzOps(const FuzzConfig &cfg, std::vector<FuzzOp> ops,
              std::size_t max_runs)
{
    std::size_t runs = 0;
    auto fails = [&](const std::vector<FuzzOp> &o) {
        ++runs;
        return runFuzzOps(cfg, o).failed;
    };

    if (ops.empty() || !fails(ops))
        return ops;

    // Greedy ddmin: delete chunks while the failure reproduces,
    // halving the chunk size until single ops are irreducible.
    std::size_t chunk = std::max<std::size_t>(1, ops.size() / 2);
    while (true) {
        std::size_t start = 0;
        while (start < ops.size()) {
            if (runs >= max_runs)
                return ops;
            std::vector<FuzzOp> cand;
            cand.reserve(ops.size());
            cand.insert(cand.end(), ops.begin(),
                        ops.begin() + static_cast<std::ptrdiff_t>(start));
            cand.insert(cand.end(),
                        ops.begin() + static_cast<std::ptrdiff_t>(
                            std::min(start + chunk, ops.size())),
                        ops.end());
            if (cand.size() < ops.size() && fails(cand)) {
                ops = std::move(cand);  // keep deletion, retry in place
            } else {
                start += chunk;
            }
        }
        if (chunk == 1)
            break;
        chunk /= 2;
    }
    return ops;
}

namespace
{

/** Minimal JSON string escaping for the violation text. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) >= 0x20)
                out += c;
        }
    }
    return out;
}

/** Tiny recursive-descent scanner for the trace's JSON subset. */
struct JsonScanner
{
    std::string s;
    std::size_t i = 0;

    void
    ws()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                s[i] == '\r' || s[i] == ',')) {
            ++i;
        }
    }

    bool
    consume(char c)
    {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }

    bool
    peek(char c)
    {
        ws();
        return i < s.size() && s[i] == c;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size()) {
                ++i;
                switch (s[i]) {
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  default:
                    out += s[i];
                }
            } else {
                out += s[i];
            }
            ++i;
        }
        return consume('"');
    }

    bool
    parseInt(std::int64_t &out)
    {
        ws();
        std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() && s[i] >= '0' && s[i] <= '9')
            ++i;
        if (i == start)
            return false;
        out = std::strtoll(s.substr(start, i - start).c_str(), nullptr,
                           10);
        return true;
    }

    bool
    parseBool(bool &out)
    {
        ws();
        if (s.compare(i, 4, "true") == 0) {
            out = true;
            i += 4;
            return true;
        }
        if (s.compare(i, 5, "false") == 0) {
            out = false;
            i += 5;
            return true;
        }
        return false;
    }

    /** Skip any value of the subset (for unknown keys). */
    bool
    skipValue()
    {
        ws();
        if (peek('"')) {
            std::string tmp;
            return parseString(tmp);
        }
        if (peek('[')) {
            consume('[');
            while (!peek(']')) {
                if (!skipValue())
                    return false;
            }
            return consume(']');
        }
        bool b;
        if (parseBool(b))
            return true;
        std::int64_t v;
        return parseInt(v);
    }
};

} // namespace

void
writeFuzzTrace(std::ostream &os, const FuzzConfig &cfg,
               std::uint64_t seed, const std::vector<FuzzOp> &ops,
               const FuzzReport &rep)
{
    os << "{\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"nodes\": " << cfg.nodes << ",\n";
    os << "  \"lines\": " << cfg.lines << ",\n";
    os << "  \"max_outstanding\": " << cfg.maxOutstanding << ",\n";
    os << "  \"l2_kb\": " << cfg.l2KB << ",\n";
    os << "  \"transparent_loads\": "
       << (cfg.transparentLoads ? "true" : "false") << ",\n";
    os << "  \"self_invalidation\": "
       << (cfg.selfInvalidation ? "true" : "false") << ",\n";
    os << "  \"protocol\": \"" << protocolName(cfg.protocol)
       << "\",\n";
    os << "  \"single_writer\": "
       << (cfg.singleWriter ? "true" : "false") << ",\n";
    os << "  \"drop_nth_invalidation\": "
       << cfg.faults.dropNthInvalidation << ",\n";
    os << "  \"first_violation\": \"" << jsonEscape(rep.firstViolation)
       << "\",\n";
    os << "  \"ops\": [";
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (i % 8 == 0)
            os << "\n    ";
        os << "[" << static_cast<int>(ops[i].kind) << ","
           << ops[i].node << "," << ops[i].lineIdx << ","
           << ops[i].delay << "]";
        if (i + 1 < ops.size())
            os << ",";
    }
    os << "\n  ]\n}\n";
}

bool
readFuzzTrace(std::istream &is, FuzzConfig &cfg, std::uint64_t &seed,
              std::vector<FuzzOp> &ops)
{
    JsonScanner sc;
    {
        std::ostringstream buf;
        buf << is.rdbuf();
        sc.s = buf.str();
    }

    if (!sc.consume('{'))
        return false;
    ops.clear();
    seed = 0;

    while (!sc.peek('}')) {
        std::string key;
        if (!sc.parseString(key) || !sc.consume(':'))
            return false;

        std::int64_t v = 0;
        bool b = false;
        if (key == "seed" && sc.parseInt(v)) {
            seed = static_cast<std::uint64_t>(v);
        } else if (key == "nodes" && sc.parseInt(v)) {
            cfg.nodes = static_cast<int>(v);
        } else if (key == "lines" && sc.parseInt(v)) {
            cfg.lines = static_cast<int>(v);
        } else if (key == "max_outstanding" && sc.parseInt(v)) {
            cfg.maxOutstanding = static_cast<int>(v);
        } else if (key == "l2_kb" && sc.parseInt(v)) {
            cfg.l2KB = static_cast<std::uint32_t>(v);
        } else if (key == "transparent_loads" && sc.parseBool(b)) {
            cfg.transparentLoads = b;
        } else if (key == "self_invalidation" && sc.parseBool(b)) {
            cfg.selfInvalidation = b;
        } else if (key == "protocol") {
            std::string name;
            if (!sc.parseString(name))
                return false;
            if (name == "moesi")
                cfg.protocol = ProtocolKind::MOESI;
            else if (name == "msi")
                cfg.protocol = ProtocolKind::MSI;
            else
                return false;
        } else if (key == "single_writer" && sc.parseBool(b)) {
            cfg.singleWriter = b;
        } else if (key == "drop_nth_invalidation" && sc.parseInt(v)) {
            cfg.faults.dropNthInvalidation = static_cast<int>(v);
        } else if (key == "ops") {
            if (!sc.consume('['))
                return false;
            while (!sc.peek(']')) {
                if (!sc.consume('['))
                    return false;
                std::int64_t k, n, l, d;
                if (!sc.parseInt(k) || !sc.parseInt(n) ||
                    !sc.parseInt(l) || !sc.parseInt(d) ||
                    !sc.consume(']')) {
                    return false;
                }
                if (k < 0 ||
                    k >= static_cast<int>(FuzzOpKind::NumKinds)) {
                    return false;
                }
                FuzzOp op;
                op.kind = static_cast<FuzzOpKind>(k);
                op.node = static_cast<NodeId>(n);
                op.lineIdx = static_cast<std::uint16_t>(l);
                op.delay = static_cast<std::uint16_t>(d);
                ops.push_back(op);
            }
            if (!sc.consume(']'))
                return false;
        } else if (!sc.skipValue()) {
            return false;
        }
    }
    cfg.ops = static_cast<int>(ops.size());
    return sc.consume('}');
}

} // namespace slipsim
